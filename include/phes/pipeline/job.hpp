#pragma once
// The end-to-end passivity pipeline of paper Sec. II, as one runnable
// stage machine:
//
//   load -> fit (vector fitting) -> realize (SIMO state space)
//        -> characterize (parallel Hamiltonian eigensolver)
//        -> enforce (iterative residue perturbation, skipped when the
//           model is already passive) -> verify (re-characterization)
//
// Each stage is timed, and a throwing stage is captured as a structured
// failure on the result instead of escaping mid-batch — the contract
// BatchRunner (pipeline/batch.hpp) relies on to keep one bad input from
// killing N-1 good jobs.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "phes/core/solver.hpp"
#include "phes/engine/session.hpp"
#include "phes/macromodel/samples.hpp"
#include "phes/passivity/characterization.hpp"
#include "phes/passivity/enforcement.hpp"
#include "phes/vf/vector_fitting.hpp"

namespace phes::engine {
class SessionPool;
}  // namespace phes::engine

namespace phes::pipeline {

/// Pipeline stages in execution order.
enum class Stage {
  kLoad = 0,
  kFit,
  kRealize,
  kCharacterize,
  kEnforce,
  kVerify,
};

[[nodiscard]] const char* stage_name(Stage stage) noexcept;

/// Parse a stage name ("load", "fit", ...).  Throws std::invalid_argument
/// on an unknown name.
[[nodiscard]] Stage parse_stage(const std::string& name);

/// Per-job knobs (stage options plus early-stop control).
struct JobOptions {
  vf::VectorFittingOptions fit{};
  core::SolverOptions solver{};
  passivity::EnforcementOptions enforcement{};
  /// Solver-session tuning (factorization cache, warm starts).  One
  /// session is created per job and threaded through characterize ->
  /// enforce -> verify.
  engine::SessionOptions session{};
  /// Run stages up to and including this one, then stop.
  Stage stop_after = Stage::kVerify;
};

/// Format of a PipelineJob's in-memory text input.
enum class InputFormat {
  /// Touchstone when `input_ports` > 0, phes-samples text otherwise.
  kAuto = 0,
  kTouchstone,
  kSamples,
};

/// One pipeline invocation: a named input plus its options.  The input
/// is one of, in dispatch order:
///   - `input_text`: in-memory file contents (inline submission over
///     the job-server protocol) parsed by the load stage — Touchstone
///     needs `input_ports` since there is no ".sNp" extension to read
///     a port count from;
///   - `input_path`: a file (Touchstone ".sNp" or phes-samples text,
///     dispatched on extension);
///   - `samples`: already-parsed samples.
struct PipelineJob {
  std::string name;        ///< label for reports (defaults to the path)
  std::string input_path;  ///< empty => use `input_text` / `samples`
  /// In-memory input: when non-empty, the load stage parses this text
  /// instead of touching the filesystem.
  std::string input_text;
  InputFormat input_format = InputFormat::kAuto;
  std::size_t input_ports = 0;  ///< Touchstone text port count
  macromodel::FrequencySamples samples;
  JobOptions options{};
  /// Caller-assigned identifier, carried onto the result verbatim (the
  /// job server uses it to key its result store; 0 = unassigned).
  std::uint64_t id = 0;
};

/// Wall-clock record of one completed stage.
struct StageTiming {
  Stage stage = Stage::kLoad;
  double seconds = 0.0;
  /// Offset of the stage's start from the pipeline's start (seconds on
  /// the monotonic clock).  Feeds trace spans; deliberately NOT part of
  /// the serialized job record (write_job_json stays byte-stable across
  /// the durable store's read/write round trip).
  double start_seconds = 0.0;
};

/// Structured outcome of one job.
struct PipelineResult {
  std::string name;
  std::uint64_t id = 0;  ///< copied from the job

  bool ok = false;         ///< no stage threw
  bool completed = false;  ///< reached options.stop_after
  std::string error;       ///< failure message when !ok
  Stage failed_stage = Stage::kLoad;  ///< meaningful when !ok
  /// The job was cancelled at a stage boundary (ok is false and
  /// failed_stage names the stage that never started).
  bool cancelled = false;

  std::vector<StageTiming> stage_timings;  ///< completed stages, in order
  double total_seconds = 0.0;

  // Stage products (populated up to the last completed stage).
  std::size_t sample_count = 0;
  std::size_t ports = 0;
  std::size_t order = 0;      ///< dynamic order n of the fitted model
  double fit_rms = 0.0;
  std::size_t fit_iterations = 0;

  passivity::PassivityReport initial_report;  ///< characterize output
  bool enforcement_run = false;  ///< false when already passive
  passivity::EnforcementResult enforcement;
  passivity::PassivityReport final_report;  ///< verify output

  /// True when the verify stage re-certified the (possibly perturbed)
  /// model as passive.
  bool certified_passive = false;

  /// Solver-session reuse statistics for this job.  When the job ran on
  /// a pooled session (PipelineContext::session_pool) these are deltas
  /// over the job's lifetime, so cross-job cache hits are visible per
  /// job; otherwise they are the whole (per-job) session's counters.
  engine::SessionStats session;
  /// The realize stage was served by an already-pooled session for the
  /// same model hash (cross-job sharing happened).
  bool session_reused = false;

  /// Compact status: "passive" | "enforced" | "not-passive" |
  /// "stopped@<stage>" | "failed@<stage>" | "cancelled@<stage>".
  [[nodiscard]] std::string status() const;
};

/// Serialize a job's replayable input specification — name, input
/// source (path or inline text), format, port count, content hash, and
/// the option surface the submit protocol exposes — as one JSON
/// document.  The durable store persists it at admission so `replay`/
/// `resubmit` can turn a stored record back into a fresh PipelineJob.
/// A job whose input is an already-parsed samples set has no replayable
/// source and yields an empty string.
[[nodiscard]] std::string write_job_spec_json(const PipelineJob& job);

/// Parse a write_job_spec_json document back into a PipelineJob.
/// `defaults` seeds the options the spec does not override, mirroring
/// the submit protocol (whose unset options fall back to the
/// serve-side job defaults).  Unknown fields — including option keys
/// and stage names from future spec versions — are ignored, never
/// fatal.  Throws std::runtime_error on malformed JSON or a spec with
/// no replayable input.
[[nodiscard]] PipelineJob read_job_spec_json(const std::string& text,
                                             const JobOptions& defaults = {});

/// FNV-1a 64-bit content hash (16 hex digits) of a job's replayable
/// input: the inline payload bytes when present, else the input path.
/// The replay filter's "model" key matches against this.
[[nodiscard]] std::string input_content_hash(const PipelineJob& job);

/// Load a samples file, dispatching on extension: ".sNp"/".snp" is
/// parsed as Touchstone, anything else as the phes-samples text format.
[[nodiscard]] macromodel::FrequencySamples load_input(
    const std::string& path);

/// Parse in-memory file contents through the same readers the path
/// route uses (io::load_touchstone / macromodel::load_samples), so an
/// inline submission of a file's bytes yields bit-identical samples.
/// Touchstone requires `ports` >= 1.  Throws std::runtime_error on
/// parse errors (with the readers' line numbers).
[[nodiscard]] macromodel::FrequencySamples parse_input_text(
    const std::string& text, InputFormat format, std::size_t ports);

/// Per-run hooks a host (batch runner, job server) threads through the
/// stage machine.  Default-constructed, run_pipeline behaves exactly as
/// the hook-free overload.
struct PipelineContext {
  /// Cross-job session pool: the realize stage checks the fitted model
  /// out of this pool instead of building a private session (the
  /// pool's SessionOptions apply, not JobOptions::session).  The lease
  /// is returned when the job finishes.  Exception: a job whose own
  /// session options disable warm starts runs on a private cold
  /// session — it must not inherit another job's hot cache.
  engine::SessionPool* session_pool = nullptr;
  /// Cooperative cancellation, polled at every stage boundary; a set
  /// flag stops the job before its next stage (result.cancelled).
  const std::atomic<bool>* cancel = nullptr;
  /// Observer invoked as each stage begins (progress reporting).  Runs
  /// on the pipeline's thread; keep it cheap and noexcept-ish.
  std::function<void(Stage)> on_stage_start;
};

/// Run one job through the stage machine.  Never throws on bad input or
/// numerical failure — such errors come back on the result.  (Only
/// allocation failure and similar catastrophes propagate.)
[[nodiscard]] PipelineResult run_pipeline(const PipelineJob& job);

/// Hooked variant: same stage machine with a session pool, cooperative
/// cancellation, and a stage observer (see PipelineContext).
[[nodiscard]] PipelineResult run_pipeline(const PipelineJob& job,
                                          const PipelineContext& context);

}  // namespace phes::pipeline
