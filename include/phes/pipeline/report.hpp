#pragma once
// Machine-readable batch reporting: JSON and CSV renderings of a batch
// run's per-job results (status, timings, fit quality, violation-band
// counts, and the solver-session reuse statistics), for CI trend
// tracking of the paper-replication benchmarks next to the ASCII table.
//
// The JSON document is
//   { "jobs": [ {...}, ... ],
//     "summary": { "jobs": N, "succeeded": K, ... } }
// and the CSV is one header row plus one row per job with the same
// fields flattened.  Both are written with plain stream output — no
// third-party serializer, no locale dependence.

#include <iosfwd>
#include <string>
#include <vector>

#include "phes/pipeline/job.hpp"

namespace phes::pipeline {

/// Escape a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(const std::string& text);

/// Write one result as a JSON object (no trailing newline).  `indent`
/// spaces prefix every line.  This is the per-job body of the batch
/// summary document, exposed so the job server's `result` op returns
/// the same machine-readable record as `--summary-json`.
void write_job_json(const PipelineResult& result, std::ostream& os,
                    std::size_t indent = 0);

void write_summary_json(const std::vector<PipelineResult>& results,
                        std::ostream& os);
void write_summary_csv(const std::vector<PipelineResult>& results,
                       std::ostream& os);

/// File-writing convenience wrappers; throw std::runtime_error when the
/// path cannot be opened.
void write_summary_json_file(const std::vector<PipelineResult>& results,
                             const std::string& path);
void write_summary_csv_file(const std::vector<PipelineResult>& results,
                            const std::string& path);

}  // namespace phes::pipeline
