#pragma once
// Machine-readable batch reporting: JSON and CSV renderings of a batch
// run's per-job results (status, timings, fit quality, violation-band
// counts, and the solver-session reuse statistics), for CI trend
// tracking of the paper-replication benchmarks next to the ASCII table.
//
// The JSON document is
//   { "jobs": [ {...}, ... ],
//     "summary": { "jobs": N, "succeeded": K, ... } }
// and the CSV is one header row plus one row per job with the same
// fields flattened.  Both are written with plain stream output — no
// third-party serializer, no locale dependence.

#include <iosfwd>
#include <string>
#include <vector>

#include "phes/pipeline/job.hpp"

namespace phes::pipeline {

/// Escape a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(const std::string& text);

/// Write one result as a JSON object (no trailing newline).  `indent`
/// spaces prefix every line.  This is the per-job body of the batch
/// summary document, exposed so the job server's `result` op returns
/// the same machine-readable record as `--summary-json`.
void write_job_json(const PipelineResult& result, std::ostream& os,
                    std::size_t indent = 0);

/// Parse one write_job_json document (pretty or single-line) back into
/// a PipelineResult — the inverse used by the job server's durable
/// result storage to serve `result` responses across restarts.  Only
/// the serialized fields are reconstructed: band lists come back as
/// default-valued entries of the recorded count, the matvec total is
/// attributed to the initial report, and unserialized diagnostics
/// (fit_iterations, crossings, per-band peaks) are lost.  The contract
/// that matters is re-serialization stability:
///   write_job_json(read_job_json(write_job_json(r))) ==
///   write_job_json(r)
/// byte for byte, so a recovered record's `result` response is
/// identical to the pre-restart one.  Throws std::runtime_error on
/// malformed input.
[[nodiscard]] PipelineResult read_job_json(const std::string& text);

/// Canonical single-line JSON of a result's *deterministic* fields —
/// what two runs of the same job on the same build must agree on, per
/// the session-pool determinism guarantee.  Excludes everything that
/// legitimately varies run to run: wall-clock timings, session reuse
/// counters, matvec totals, and the job id.  Campaign replay classifies
/// a replayed job against its stored record by comparing signatures:
/// equal => bit-identical output.
[[nodiscard]] std::string result_signature(const PipelineResult& result);

void write_summary_json(const std::vector<PipelineResult>& results,
                        std::ostream& os);
void write_summary_csv(const std::vector<PipelineResult>& results,
                       std::ostream& os);

/// File-writing convenience wrappers; throw std::runtime_error when the
/// path cannot be opened.
void write_summary_json_file(const std::vector<PipelineResult>& results,
                             const std::string& path);
void write_summary_csv_file(const std::vector<PipelineResult>& results,
                            const std::string& path);

}  // namespace phes::pipeline
