#pragma once
// Multi-job execution of the passivity pipeline — the "many concurrent
// workloads" layer over pipeline/job.hpp.
//
// Parallelism is two-level, mirroring how the paper's eigensolver is
// deployed in practice: J jobs run concurrently on util::ThreadPool
// workers, and each job's Hamiltonian characterization itself uses T
// solver threads.  plan_parallelism() splits a hardware budget between
// the levels, preferring job-level parallelism (independent jobs scale
// embarrassingly; intra-solver speedup saturates, paper Fig. 6).

#include <cstddef>
#include <string>
#include <vector>

#include "phes/engine/session_pool.hpp"
#include "phes/pipeline/job.hpp"
#include "phes/util/table.hpp"

namespace phes::pipeline {

/// A (job workers) x (solver threads per job) split of a thread budget.
struct ParallelismPlan {
  std::size_t job_workers = 1;
  std::size_t solver_threads = 1;
};

/// Split `total_threads` over `job_count` jobs.  Job-level parallelism
/// is saturated first; leftover capacity becomes solver threads.
/// `total_threads` 0 means the hardware concurrency.
[[nodiscard]] ParallelismPlan plan_parallelism(std::size_t total_threads,
                                               std::size_t job_count);

struct BatchOptions {
  /// Hardware budget split by plan_parallelism(); 0 => hardware.
  std::size_t total_threads = 0;
  /// Explicit overrides; 0 => derive from the plan.
  std::size_t job_workers = 0;
  std::size_t solver_threads = 0;
  /// Share solver sessions across the batch's jobs through an
  /// engine::SessionPool keyed by model content hash, so directory
  /// batches with duplicate models get the job server's cross-job
  /// factorization-cache hits.  The pool resets warm-start records on
  /// return, keeping pooled results bit-identical to private-session
  /// runs; jobs whose own options disable warm starts bypass the pool.
  bool share_sessions = true;
  engine::SessionPoolOptions pool{};
};

/// A batch's results plus the shared session pool's counters (all
/// zeros when session sharing was off).
struct BatchOutcome {
  std::vector<PipelineResult> results;
  engine::SessionPoolStats pool;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  /// Run all jobs, J at a time; per-job failures are captured on their
  /// results (one bad input never aborts the batch).  Results come back
  /// in job order.  Each job's SolverOptions.threads is overwritten
  /// with the planned per-job solver thread count.
  [[nodiscard]] std::vector<PipelineResult> run(
      std::vector<PipelineJob> jobs) const;

  /// run() plus the session-pool statistics of the batch.
  [[nodiscard]] BatchOutcome run_all(std::vector<PipelineJob> jobs) const;

  /// The split run() will use for `job_count` jobs.
  [[nodiscard]] ParallelismPlan plan_for(std::size_t job_count) const;

 private:
  BatchOptions options_;
};

/// Aggregate per-job results into a summary table (name, status, ports,
/// order, bands before/after, fit error, timings).  With `pool`, a
/// footer row surfaces the batch's session-pool reuse (checkouts,
/// pool hits, aggregated cache hits/misses).
[[nodiscard]] util::Table summary_table(
    const std::vector<PipelineResult>& results,
    const engine::SessionPoolStats* pool = nullptr);

/// Count of jobs that ran to their stop point without a stage failure.
[[nodiscard]] std::size_t count_succeeded(
    const std::vector<PipelineResult>& results);

}  // namespace phes::pipeline
