#pragma once
// Singular value machinery.
//
// Passivity of a scattering macromodel is a bound on the singular values
// of the p x p complex transfer matrix H(jw) (paper Eq. 3).  We provide:
//  - a one-sided Jacobi SVD for real matrices (full U, sigma, V),
//  - a two-sided Jacobi eigensolver for complex Hermitian matrices,
//  - singular values / leading triplets of complex matrices via the
//    Hermitian eigenproblem of A^H A (p <= ~100, so Jacobi's O(p^3)
//    per sweep is cheap and its accuracy near sigma = 1 is excellent).

#include <vector>

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"

namespace phes::la {

/// Thin SVD A = U diag(sigma) V^T of a real m x n matrix (m >= n).
struct RealSvdResult {
  RealMatrix u;        ///< m x n, orthonormal columns
  RealVector sigma;    ///< n singular values, descending
  RealMatrix v;        ///< n x n orthogonal
};

[[nodiscard]] RealSvdResult real_svd(RealMatrix a);

/// Singular values only (descending).
[[nodiscard]] RealVector real_singular_values(RealMatrix a);

/// Eigen-decomposition A = V diag(lambda) V^H of a complex Hermitian
/// matrix; lambda real, descending.
struct HermitianEigResult {
  RealVector values;
  ComplexMatrix vectors;
};

[[nodiscard]] HermitianEigResult hermitian_eig(ComplexMatrix a,
                                               bool want_vectors);

/// Singular values of a complex matrix, descending.
[[nodiscard]] RealVector complex_singular_values(const ComplexMatrix& a);

/// Largest singular value of a complex matrix.
[[nodiscard]] double complex_spectral_norm(const ComplexMatrix& a);

/// Full set of singular triplets (u_i, sigma_i, v_i) of a square complex
/// matrix, descending by sigma.  u_i = A v_i / sigma_i (valid when
/// sigma_i is well separated from zero, which holds near the unit
/// threshold where passivity analysis needs them).
struct ComplexSvdResult {
  ComplexMatrix u;
  RealVector sigma;
  ComplexMatrix v;
};

[[nodiscard]] ComplexSvdResult complex_svd(const ComplexMatrix& a);

}  // namespace phes::la
