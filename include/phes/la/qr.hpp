#pragma once
// Householder QR factorization and least-squares solving (real).
//
// Consumers: Vector Fitting's overdetermined pole-relocation systems and
// the passivity-enforcement least-squares updates.

#include <cstddef>
#include <vector>

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"

namespace phes::la {

/// Compact Householder QR of an m x n real matrix, m >= n.
class QrFactorization {
 public:
  /// Factors A in place.  Throws std::invalid_argument if m < n.
  explicit QrFactorization(RealMatrix a);

  [[nodiscard]] std::size_t rows() const noexcept { return qr_.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return qr_.cols(); }

  /// Minimum-residual solution of min ||A x - b||_2 (x has n entries).
  [[nodiscard]] RealVector solve(RealVector b) const;

  /// Explicit thin Q (m x n) — mainly for tests.
  [[nodiscard]] RealMatrix thin_q() const;

  /// Explicit R (n x n upper triangular).
  [[nodiscard]] RealMatrix r() const;

  /// |R(i,i)| minimum — rank-deficiency indicator.
  [[nodiscard]] double min_diag_r() const noexcept;

 private:
  void apply_qt(RealVector& b) const;  // b <- Q^T b

  RealMatrix qr_;           // R in the upper triangle, reflectors below
  RealVector tau_;          // reflector scalars
};

/// One-shot least squares: argmin_x ||A x - b||_2.
[[nodiscard]] RealVector least_squares(RealMatrix a, RealVector b);

}  // namespace phes::la
