#pragma once
// Complex eigensolvers.
//
// The Arnoldi process projects the shifted-and-inverted Hamiltonian onto
// a d-dimensional Krylov basis, giving a small complex upper-Hessenberg
// matrix (d <= 60 in the paper).  Its eigenpairs (Ritz pairs) are
// computed here with a shifted QR iteration using complex Givens
// rotations, plus triangular back-substitution for eigenvectors.

#include <vector>

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"

namespace phes::la {

/// Eigen-decomposition of a complex matrix.
struct ComplexEigResult {
  ComplexVector values;  ///< eigenvalues (unordered)
  ComplexMatrix vectors;  ///< columns are unit-norm eigenvectors (may be empty)
};

/// Eigenpairs of an upper-Hessenberg complex matrix.
/// Entries below the first subdiagonal are ignored.
[[nodiscard]] ComplexEigResult hessenberg_eig(ComplexMatrix h,
                                              bool want_vectors);

/// Eigenpairs of a general complex matrix (Householder reduction to
/// Hessenberg form followed by hessenberg_eig).
[[nodiscard]] ComplexEigResult complex_eig(ComplexMatrix a,
                                           bool want_vectors);

/// Eigenvalues of a general complex matrix.
[[nodiscard]] ComplexVector complex_eigenvalues(ComplexMatrix a);

}  // namespace phes::la
