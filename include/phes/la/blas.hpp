#pragma once
// BLAS-like dense kernels (level 1-3) over Matrix<T> and std::vector<T>.
//
// Plain loops, cache-aware ikj ordering for gemm; OpenMP parallelizes the
// outer loop when the product is large enough to amortize fork/join.

#include <cmath>
#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"
#include "phes/util/check.hpp"

namespace phes::la {

namespace detail {
/// Squared modulus that works for both real and complex scalars.
inline double abs_sq(double x) noexcept { return x * x; }
inline double abs_sq(const Complex& x) noexcept { return std::norm(x); }
/// Conjugation helper: identity for reals.
inline double conj_of(double x) noexcept { return x; }
inline Complex conj_of(const Complex& x) noexcept { return std::conj(x); }
}  // namespace detail

// ---------------------------------------------------------------------------
// Level 1: vector kernels
// ---------------------------------------------------------------------------

/// y += alpha * x
template <typename T>
void axpy(T alpha, std::span<const T> x, std::span<T> y) {
  util::check(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// x *= alpha
template <typename T>
void scal(T alpha, std::span<T> x) noexcept {
  for (auto& v : x) v *= alpha;
}

/// Euclidean inner product; conjugates the first argument for complex
/// scalars (i.e. x^H y), matching BLAS dotc.
template <typename T>
[[nodiscard]] T dot(std::span<const T> x, std::span<const T> y) {
  util::check(x.size() == y.size(), "dot: size mismatch");
  T acc{};
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += detail::conj_of(x[i]) * y[i];
  }
  return acc;
}

/// Euclidean norm.
template <typename T>
[[nodiscard]] double nrm2(std::span<const T> x) noexcept {
  double acc = 0.0;
  for (const auto& v : x) acc += detail::abs_sq(v);
  return std::sqrt(acc);
}

/// Infinity norm of a vector.
template <typename T>
[[nodiscard]] double inf_norm(std::span<const T> x) noexcept {
  double m = 0.0;
  for (const auto& v : x) m = std::max(m, std::abs(v));
  return m;
}

// ---------------------------------------------------------------------------
// Level 2: matrix-vector products
// ---------------------------------------------------------------------------

/// y = A x
template <typename T>
[[nodiscard]] std::vector<T> gemv(const Matrix<T>& a,
                                  std::span<const T> x) {
  util::check(a.cols() == x.size(), "gemv: shape mismatch");
  std::vector<T> y(a.rows(), T{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const T* row = a.row_ptr(i);
    T acc{};
    for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

/// y = A^T x (real) — column-oriented traversal of the row-major store.
template <typename T>
[[nodiscard]] std::vector<T> gemv_transposed(const Matrix<T>& a,
                                             std::span<const T> x) {
  util::check(a.rows() == x.size(), "gemv_transposed: shape mismatch");
  std::vector<T> y(a.cols(), T{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const T* row = a.row_ptr(i);
    const T xi = x[i];
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

/// Mixed-precision convenience: y = A x with real A and complex x.
[[nodiscard]] ComplexVector gemv_real_complex(const RealMatrix& a,
                                              std::span<const Complex> x);

/// y = A^T x with real A and complex x.
[[nodiscard]] ComplexVector gemv_transposed_real_complex(
    const RealMatrix& a, std::span<const Complex> x);

// ---------------------------------------------------------------------------
// Level 3: matrix-matrix products
// ---------------------------------------------------------------------------

/// C = A B
template <typename T>
[[nodiscard]] Matrix<T> gemm(const Matrix<T>& a, const Matrix<T>& b) {
  util::check(a.cols() == b.rows(), "gemm: shape mismatch");
  Matrix<T> c(a.rows(), b.cols());
  gemm_into(a, b, c);
  return c;
}

/// C = A B written into a preallocated result (ikj loop order).
template <typename T>
void gemm_into(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c) {
  util::check(a.cols() == b.rows() && c.rows() == a.rows() &&
                  c.cols() == b.cols(),
              "gemm_into: shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 20)
  for (std::size_t i = 0; i < m; ++i) {
    T* ci = c.row_ptr(i);
    for (std::size_t j = 0; j < n; ++j) ci[j] = T{};
    const T* ai = a.row_ptr(i);
    for (std::size_t l = 0; l < k; ++l) {
      const T ail = ai[l];
      const T* bl = b.row_ptr(l);
      for (std::size_t j = 0; j < n; ++j) ci[j] += ail * bl[j];
    }
  }
}

/// Frobenius norm.
template <typename T>
[[nodiscard]] double frobenius_norm(const Matrix<T>& a) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      acc += detail::abs_sq(a(i, j));
    }
  }
  return std::sqrt(acc);
}

/// Max absolute entry.
template <typename T>
[[nodiscard]] double max_abs(const Matrix<T>& a) noexcept {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j)));
    }
  }
  return m;
}

}  // namespace phes::la
