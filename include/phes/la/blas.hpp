#pragma once
// BLAS-like dense kernels (level 1-3) over Matrix<T> and std::vector<T>.
//
// Plain loops, cache-aware ikj ordering for gemm; OpenMP parallelizes the
// outer loop when the product is large enough to amortize fork/join.

#include <cmath>
#include <complex>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"
#include "phes/util/check.hpp"

namespace phes::la {

namespace detail {
/// Squared modulus that works for both real and complex scalars.
inline double abs_sq(double x) noexcept { return x * x; }
inline double abs_sq(const Complex& x) noexcept { return std::norm(x); }
/// Conjugation helper: identity for reals.
inline double conj_of(double x) noexcept { return x; }
inline Complex conj_of(const Complex& x) noexcept { return std::conj(x); }

/// Scaled sum-of-squares update (LAPACK dlassq): folds |a| into the
/// running representation  scale^2 * ssq  without squaring a directly,
/// so entries near DBL_MAX / DBL_MIN neither overflow nor vanish.
inline void scaled_ssq(double a, double& scale, double& ssq) noexcept {
  a = std::abs(a);
  if (a == 0.0) return;
  if (scale < a) {
    const double r = scale / a;
    ssq = 1.0 + ssq * r * r;
    scale = a;
  } else {
    const double r = a / scale;
    ssq += r * r;
  }
}
inline void scaled_ssq_of(double v, double& scale, double& ssq) noexcept {
  scaled_ssq(v, scale, ssq);
}
inline void scaled_ssq_of(const Complex& v, double& scale,
                          double& ssq) noexcept {
  scaled_ssq(v.real(), scale, ssq);
  scaled_ssq(v.imag(), scale, ssq);
}
}  // namespace detail

// ---------------------------------------------------------------------------
// Level 1: vector kernels
// ---------------------------------------------------------------------------

/// y += alpha * x
template <typename T>
void axpy(T alpha, std::span<const T> x, std::span<T> y) {
  util::check(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// x *= alpha
template <typename T>
void scal(T alpha, std::span<T> x) noexcept {
  for (auto& v : x) v *= alpha;
}

/// Euclidean inner product; conjugates the first argument for complex
/// scalars (i.e. x^H y), matching BLAS dotc.
template <typename T>
[[nodiscard]] T dot(std::span<const T> x, std::span<const T> y) {
  util::check(x.size() == y.size(), "dot: size mismatch");
  T acc{};
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += detail::conj_of(x[i]) * y[i];
  }
  return acc;
}

/// Euclidean norm.  The fast path is the naive sum of squares
/// (bit-identical to the historical kernel whenever it lands in the
/// normal range); when that sum overflows to inf or underflows below
/// the smallest normal, a scaled (hypot-style) pass recovers the norm
/// of vectors with entries near DBL_MAX / DBL_MIN.
template <typename T>
[[nodiscard]] double nrm2(std::span<const T> x) noexcept {
  double acc = 0.0;
  for (const auto& v : x) acc += detail::abs_sq(v);
  if (acc >= std::numeric_limits<double>::min() && std::isfinite(acc)) {
    return std::sqrt(acc);
  }
  // Rescue pass: acc overflowed, or is denormal/zero (which cannot
  // distinguish a zero vector from one whose squares underflowed).
  double scale = 0.0, ssq = 1.0;
  for (const auto& v : x) detail::scaled_ssq_of(v, scale, ssq);
  return scale * std::sqrt(ssq);
}

/// Infinity norm of a vector.
template <typename T>
[[nodiscard]] double inf_norm(std::span<const T> x) noexcept {
  double m = 0.0;
  for (const auto& v : x) m = std::max(m, std::abs(v));
  return m;
}

// ---------------------------------------------------------------------------
// Level 2: matrix-vector products
// ---------------------------------------------------------------------------

/// y = A x.  Rows are processed two at a time so each load of x feeds
/// two dot products; every row keeps one accumulator traversed in
/// ascending j, so results are bit-identical to the plain row loop.
template <typename T>
[[nodiscard]] std::vector<T> gemv(const Matrix<T>& a,
                                  std::span<const T> x) {
  util::check(a.cols() == x.size(), "gemv: shape mismatch");
  const std::size_t m = a.rows(), n = a.cols();
  std::vector<T> y(m, T{});
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const T* r0 = a.row_ptr(i);
    const T* r1 = a.row_ptr(i + 1);
    T acc0{}, acc1{};
    for (std::size_t j = 0; j < n; ++j) {
      const T xj = x[j];
      acc0 += r0[j] * xj;
      acc1 += r1[j] * xj;
    }
    y[i] = acc0;
    y[i + 1] = acc1;
  }
  if (i < m) {
    const T* row = a.row_ptr(i);
    T acc{};
    for (std::size_t j = 0; j < n; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

/// y = A^T x — column-oriented traversal of the row-major store.
/// NOTE: this is the plain transpose for every scalar type.  For
/// Complex it does NOT conjugate A (dotu-style semantics, BLAS geru /
/// "gemv with trans='T'"); use `dot` when the conjugated product x^H y
/// is intended.  Rows are paired so each pass over y absorbs two
/// updates; within each y[j] the adds stay in ascending i order, so
/// results are bit-identical to the plain loop.
template <typename T>
[[nodiscard]] std::vector<T> gemv_transposed(const Matrix<T>& a,
                                             std::span<const T> x) {
  util::check(a.rows() == x.size(), "gemv_transposed: shape mismatch");
  const std::size_t m = a.rows(), n = a.cols();
  std::vector<T> y(n, T{});
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const T* r0 = a.row_ptr(i);
    const T* r1 = a.row_ptr(i + 1);
    const T x0 = x[i];
    const T x1 = x[i + 1];
    for (std::size_t j = 0; j < n; ++j) {
      T acc = y[j];
      acc += r0[j] * x0;
      acc += r1[j] * x1;
      y[j] = acc;
    }
  }
  if (i < m) {
    const T* row = a.row_ptr(i);
    const T xi = x[i];
    for (std::size_t j = 0; j < n; ++j) y[j] += row[j] * xi;
  }
  return y;
}

/// Mixed-precision convenience: y = A x with real A and complex x.
[[nodiscard]] ComplexVector gemv_real_complex(const RealMatrix& a,
                                              std::span<const Complex> x);

/// y = A^T x with real A and complex x.
[[nodiscard]] ComplexVector gemv_transposed_real_complex(
    const RealMatrix& a, std::span<const Complex> x);

// ---------------------------------------------------------------------------
// Level 3: matrix-matrix products
// ---------------------------------------------------------------------------

/// C = A B
template <typename T>
[[nodiscard]] Matrix<T> gemm(const Matrix<T>& a, const Matrix<T>& b) {
  util::check(a.cols() == b.rows(), "gemm: shape mismatch");
  Matrix<T> c(a.rows(), b.cols());
  gemm_into(a, b, c);
  return c;
}

/// C = A B written into a preallocated result (ikj loop order).
template <typename T>
void gemm_into(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c) {
  util::check(a.cols() == b.rows() && c.rows() == a.rows() &&
                  c.cols() == b.cols(),
              "gemm_into: shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 20)
  for (std::size_t i = 0; i < m; ++i) {
    T* ci = c.row_ptr(i);
    for (std::size_t j = 0; j < n; ++j) ci[j] = T{};
    const T* ai = a.row_ptr(i);
    for (std::size_t l = 0; l < k; ++l) {
      const T ail = ai[l];
      const T* bl = b.row_ptr(l);
      for (std::size_t j = 0; j < n; ++j) ci[j] += ail * bl[j];
    }
  }
}

/// Frobenius norm.
template <typename T>
[[nodiscard]] double frobenius_norm(const Matrix<T>& a) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      acc += detail::abs_sq(a(i, j));
    }
  }
  return std::sqrt(acc);
}

/// Max absolute entry.
template <typename T>
[[nodiscard]] double max_abs(const Matrix<T>& a) noexcept {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j)));
    }
  }
  return m;
}

}  // namespace phes::la
