#pragma once
// Continuous-time Lyapunov solver  A X + X A^T + Q = 0  via
// Bartels-Stewart on the real Schur form (the classic algorithm; our
// Francis QR provides the Schur factor).  Used by the gramian /
// Hankel-norm machinery that quantifies how much passivity enforcement
// perturbed a macromodel.

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"

namespace phes::la {

/// Solve A X + X A^T + Q = 0 for X.  Requires the spectra of A and -A^T
/// to be disjoint (guaranteed when A is strictly stable).  Throws
/// std::runtime_error when the Sylvester blocks are singular.
[[nodiscard]] RealMatrix solve_lyapunov(const RealMatrix& a,
                                        const RealMatrix& q);

}  // namespace phes::la
