#pragma once
// Runtime-selectable kernel backend plus the blocked, SIMD-friendly
// compute kernels behind the `tuned` backend.
//
// Dispatch rule: every numerics-heavy layer (arnoldi orthogonalization,
// the Hamiltonian operators, the batched LU applies) takes a
// KernelBackend and routes through exactly one of two code paths:
//
//   kReference  the original straight-line loops, preserved verbatim —
//               results are bit-identical to the pre-kernel-layer code;
//   kTuned      register-blocked kernels with split real/imag planes,
//               multiple accumulators, and precomputed reciprocal
//               tables.  Same math, different floating-point summation
//               order, so results may differ from reference at
//               rounding level (but are deterministic for a fixed
//               backend: bit-identical across runs and thread counts).
//
// The kernels here are deliberately free-standing (raw pointers +
// strides) so the operators can point them at matrix rows, locked
// Ritz vectors, and scratch planes without adapter copies.

#include <cstddef>
#include <string>

#include "phes/la/types.hpp"

namespace phes::la {

/// Which compute substrate the solve path runs on.
enum class KernelBackend {
  kTuned = 0,      ///< blocked/vectorized kernels (default)
  kReference = 1,  ///< pre-kernel-layer loops, bit-for-bit
};

/// Parse "tuned" / "reference".  Throws std::invalid_argument on
/// anything else (the CLI surfaces the message as a usage error).
[[nodiscard]] KernelBackend parse_kernel_backend(const std::string& name);

/// Canonical name, the inverse of parse_kernel_backend.
[[nodiscard]] const char* kernel_backend_name(KernelBackend backend) noexcept;

namespace kernels {

// ---- blocked complex row kernels (tuned Gram-Schmidt) -----------------
//
// `rows` is the first row of a row-major pack with leading dimension
// `stride`; row j is rows + j * stride.  The *_ptrs variants take an
// array of row pointers instead (locked Ritz vectors live in separate
// allocations).

/// proj[j] = sum_i conj(row_j[i]) * w[i]  for j in [0, count).
/// Blocked over rows so each load of w feeds several dot products, with
/// split re/im accumulators to break the serial addition chain.
void dotc_rows(const Complex* rows, std::size_t stride, std::size_t count,
               const Complex* w, std::size_t dim, Complex* proj);

/// Same reduction over an array of row pointers.
void dotc_ptrs(const Complex* const* rows, std::size_t count,
               const Complex* w, std::size_t dim, Complex* proj);

/// w -= sum_j coeffs[j] * row_j  for j in [0, count), blocked so each
/// store of w absorbs several rank-1 updates.
void axpy_rows(const Complex* rows, std::size_t stride, std::size_t count,
               const Complex* coeffs, Complex* w, std::size_t dim);

/// Same update over an array of row pointers.
void axpy_ptrs(const Complex* const* rows, std::size_t count,
               const Complex* coeffs, Complex* w, std::size_t dim);

// ---- split-plane real-matrix kernels ----------------------------------
//
// A real m x n matrix times a complex vector, carried as two real
// planes (re, im).  The planes keep the inner loops contiguous over
// doubles — the interleaved-complex layout defeats vectorization of
// the real-matrix products in apply_c / apply_ct.

/// yre/yim = A xre/xim (A row-major m x n; y has length m).
void gemv_planes(const double* a, std::size_t m, std::size_t n,
                 const double* xre, const double* xim, double* yre,
                 double* yim);

/// yre/yim = A^T xre/xim (y has length n).  Rows are blocked so each
/// pass over y absorbs several rows' updates.
void gemv_t_planes(const double* a, std::size_t m, std::size_t n,
                   const double* xre, const double* xim, double* yre,
                   double* yim);

/// Split an interleaved complex span into planes.
void split_planes(const Complex* x, std::size_t n, double* re, double* im);

/// Merge planes back into an interleaved complex span.
void merge_planes(const double* re, const double* im, std::size_t n,
                  Complex* x);

}  // namespace kernels

}  // namespace phes::la
