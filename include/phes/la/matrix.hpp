#pragma once
// Dense row-major matrix over double or std::complex<double>.
//
// A deliberately small, value-semantic container (C++ Core Guidelines
// C.10/C.11: concrete regular type).  All numerical algorithms live in
// free functions (blas.hpp, lu.hpp, ...) so the container stays dumb.

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "phes/la/types.hpp"
#include "phes/util/check.hpp"

namespace phes::la {

template <typename T>
class Matrix {
 public:
  using value_type = T;

  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  /// Construct from nested initializer list (row major), e.g.
  /// Matrix<double>{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = init.size();
    cols_ = rows_ > 0 ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      util::check(row.size() == cols_, "Matrix: ragged initializer list");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool is_square() const noexcept { return rows_ == cols_; }

  T& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  /// Pointer to the start of row i (rows are contiguous).
  [[nodiscard]] T* row_ptr(std::size_t i) noexcept {
    return data_.data() + i * cols_;
  }
  [[nodiscard]] const T* row_ptr(std::size_t i) const noexcept {
    return data_.data() + i * cols_;
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  static Matrix zero(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols);
  }

  /// Copy of column j as a vector.
  [[nodiscard]] std::vector<T> col(std::size_t j) const {
    std::vector<T> v(rows_);
    for (std::size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
    return v;
  }

  /// Copy of row i as a vector.
  [[nodiscard]] std::vector<T> row(std::size_t i) const {
    return std::vector<T>(row_ptr(i), row_ptr(i) + cols_);
  }

  void set_col(std::size_t j, const std::vector<T>& v) {
    util::check(v.size() == rows_, "Matrix::set_col: size mismatch");
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
  }

  void set_row(std::size_t i, const std::vector<T>& v) {
    util::check(v.size() == cols_, "Matrix::set_row: size mismatch");
    for (std::size_t j = 0; j < cols_; ++j) (*this)(i, j) = v[j];
  }

  /// Copy of the sub-block with rows [r0, r0+nr) and cols [c0, c0+nc).
  [[nodiscard]] Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
                             std::size_t nc) const {
    util::check(r0 + nr <= rows_ && c0 + nc <= cols_,
                "Matrix::block: out of range");
    Matrix b(nr, nc);
    for (std::size_t i = 0; i < nr; ++i) {
      for (std::size_t j = 0; j < nc; ++j) b(i, j) = (*this)(r0 + i, c0 + j);
    }
    return b;
  }

  /// Writes `b` into this matrix with its (0,0) at (r0, c0).
  void set_block(std::size_t r0, std::size_t c0, const Matrix& b) {
    util::check(r0 + b.rows() <= rows_ && c0 + b.cols() <= cols_,
                "Matrix::set_block: out of range");
    for (std::size_t i = 0; i < b.rows(); ++i) {
      for (std::size_t j = 0; j < b.cols(); ++j) {
        (*this)(r0 + i, c0 + j) = b(i, j);
      }
    }
  }

  Matrix& operator+=(const Matrix& other) {
    util::check(rows_ == other.rows_ && cols_ == other.cols_,
                "Matrix::operator+=: shape mismatch");
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += other.data_[k];
    return *this;
  }

  Matrix& operator-=(const Matrix& other) {
    util::check(rows_ == other.rows_ && cols_ == other.cols_,
                "Matrix::operator-=: shape mismatch");
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
    return *this;
  }

  Matrix& operator*=(T scalar) noexcept {
    for (auto& x : data_) x *= scalar;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T scalar) { return a *= scalar; }
  friend Matrix operator*(T scalar, Matrix a) { return a *= scalar; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using RealMatrix = Matrix<Real>;
using ComplexMatrix = Matrix<Complex>;

/// Plain transpose.
template <typename T>
[[nodiscard]] Matrix<T> transpose(const Matrix<T>& a) {
  Matrix<T> t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

/// Conjugate (Hermitian) transpose.
[[nodiscard]] inline ComplexMatrix adjoint(const ComplexMatrix& a) {
  ComplexMatrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = std::conj(a(i, j));
  }
  return t;
}

/// Promote a real matrix to complex.
[[nodiscard]] inline ComplexMatrix to_complex(const RealMatrix& a) {
  ComplexMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) c(i, j) = Complex(a(i, j), 0.0);
  }
  return c;
}

/// Real part of a complex matrix.
[[nodiscard]] inline RealMatrix real_part(const ComplexMatrix& a) {
  RealMatrix r(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) r(i, j) = a(i, j).real();
  }
  return r;
}

}  // namespace phes::la
