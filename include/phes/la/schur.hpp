#pragma once
// Real Schur decomposition via the Francis implicit double-shift QR
// algorithm.  This is the full-spectrum dense baseline the paper's
// Sec. III dismisses as O(n^3): we implement it both to cross-validate
// the selective Krylov solver and to regenerate the scaling ablation.

#include <vector>

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"

namespace phes::la {

/// A = Q T Q^T with T quasi-upper-triangular (1x1 / 2x2 diagonal blocks).
struct RealSchurResult {
  RealMatrix t;                   ///< quasi-triangular factor
  RealMatrix q;                   ///< orthogonal factor (empty if skipped)
  ComplexVector eigenvalues;      ///< all n eigenvalues
};

/// Compute the real Schur form.  Throws std::runtime_error if the QR
/// iteration fails to converge (pathological; not observed in practice).
[[nodiscard]] RealSchurResult real_schur(RealMatrix a, bool accumulate_q);

/// Eigenvalues only (Hessenberg + Francis QR without Q accumulation).
[[nodiscard]] ComplexVector real_eigenvalues(RealMatrix a);

/// Eigenvalues of a quasi-upper-triangular matrix (helper, exposed for
/// tests).
[[nodiscard]] ComplexVector quasi_triangular_eigenvalues(const RealMatrix& t);

}  // namespace phes::la
