#pragma once
// LU factorization with partial pivoting, for real and complex square
// matrices.  Used for: dense (M - theta I) reference solves in tests,
// the 2p x 2p Sherman-Morrison-Woodbury kernel, and R/S = D^T D - I
// solves when assembling the Hamiltonian.

#include <cmath>
#include <cstddef>
#include <vector>

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"
#include "phes/util/check.hpp"

namespace phes::la {

/// PA = LU factorization holder; solves via forward/back substitution.
template <typename T>
class LuFactorization {
 public:
  /// Factor a square matrix.  Throws std::runtime_error on exact
  /// singularity (zero pivot column).
  explicit LuFactorization(Matrix<T> a) : lu_(std::move(a)) {
    util::check(lu_.is_square(), "LuFactorization: matrix must be square");
    const std::size_t n = lu_.rows();
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

    for (std::size_t k = 0; k < n; ++k) {
      // Partial pivoting: largest |entry| in column k at or below row k.
      std::size_t piv = k;
      double best = std::abs(lu_(k, k));
      for (std::size_t i = k + 1; i < n; ++i) {
        const double v = std::abs(lu_(i, k));
        if (v > best) {
          best = v;
          piv = i;
        }
      }
      util::require(best > 0.0, "LuFactorization: singular matrix");
      if (piv != k) {
        for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
        std::swap(perm_[k], perm_[piv]);
        sign_ = -sign_;
      }
      const T pivot = lu_(k, k);
      for (std::size_t i = k + 1; i < n; ++i) {
        const T factor = lu_(i, k) / pivot;
        lu_(i, k) = factor;
        if (factor != T{}) {
          const T* rk = lu_.row_ptr(k);
          T* ri = lu_.row_ptr(i);
          for (std::size_t j = k + 1; j < n; ++j) ri[j] -= factor * rk[j];
        }
      }
    }
  }

  [[nodiscard]] std::size_t order() const noexcept { return lu_.rows(); }

  /// Solve A x = b.
  [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const {
    util::check(b.size() == order(), "LuFactorization::solve: size mismatch");
    const std::size_t n = order();
    std::vector<T> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
    // Forward substitution with unit-diagonal L.
    for (std::size_t i = 1; i < n; ++i) {
      T acc = x[i];
      const T* row = lu_.row_ptr(i);
      for (std::size_t j = 0; j < i; ++j) acc -= row[j] * x[j];
      x[i] = acc;
    }
    // Back substitution with U.
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = x[ii];
      const T* row = lu_.row_ptr(ii);
      for (std::size_t j = ii + 1; j < n; ++j) acc -= row[j] * x[j];
      x[ii] = acc / row[ii];
    }
    return x;
  }

  /// Solve A X = B for all columns of B at once.
  [[nodiscard]] Matrix<T> solve(const Matrix<T>& b) const {
    return solve_many(b);
  }

  /// Fused multi-RHS solve: one right-hand side per COLUMN of `b`.
  /// Both substitutions sweep the LU rows once per k columns (instead
  /// of once per column) and their inner loops run contiguously across
  /// the RHS block, so they vectorize across right-hand sides.  Each
  /// column sees exactly the floating-point op sequence of the
  /// single-vector solve() — results are bit-identical, the traversal
  /// is just shared.
  [[nodiscard]] Matrix<T> solve_many(const Matrix<T>& b) const {
    util::check(b.rows() == order(),
                "LuFactorization::solve_many: shape mismatch");
    const std::size_t n = order(), k = b.cols();
    Matrix<T> x(n, k);
    for (std::size_t i = 0; i < n; ++i) {
      const T* src = b.row_ptr(perm_[i]);
      T* dst = x.row_ptr(i);
      for (std::size_t c = 0; c < k; ++c) dst[c] = src[c];
    }
    // Forward substitution with unit-diagonal L.
    for (std::size_t i = 1; i < n; ++i) {
      const T* row = lu_.row_ptr(i);
      T* xi = x.row_ptr(i);
      for (std::size_t j = 0; j < i; ++j) {
        const T lij = row[j];
        const T* xj = x.row_ptr(j);
        for (std::size_t c = 0; c < k; ++c) xi[c] -= lij * xj[c];
      }
    }
    // Back substitution with U.
    for (std::size_t ii = n; ii-- > 0;) {
      const T* row = lu_.row_ptr(ii);
      T* xi = x.row_ptr(ii);
      for (std::size_t j = ii + 1; j < n; ++j) {
        const T uij = row[j];
        const T* xj = x.row_ptr(j);
        for (std::size_t c = 0; c < k; ++c) xi[c] -= uij * xj[c];
      }
      const T pivot = row[ii];
      for (std::size_t c = 0; c < k; ++c) xi[c] /= pivot;
    }
    return x;
  }

  /// Determinant (product of pivots times permutation sign).
  [[nodiscard]] T determinant() const {
    T det = static_cast<T>(sign_);
    for (std::size_t i = 0; i < order(); ++i) det *= lu_(i, i);
    return det;
  }

  /// Smallest pivot magnitude — a cheap conditioning indicator.
  [[nodiscard]] double min_pivot_magnitude() const noexcept {
    double m = std::abs(lu_(0, 0));
    for (std::size_t i = 1; i < order(); ++i) {
      m = std::min(m, std::abs(lu_(i, i)));
    }
    return m;
  }

 private:
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  int sign_ = 1;
};

/// Convenience one-shot solve: x = A^{-1} b.
template <typename T>
[[nodiscard]] std::vector<T> lu_solve(Matrix<T> a, const std::vector<T>& b) {
  return LuFactorization<T>(std::move(a)).solve(b);
}

/// Dense inverse via LU (used only for small p x p matrices).
template <typename T>
[[nodiscard]] Matrix<T> lu_inverse(Matrix<T> a) {
  const std::size_t n = a.rows();
  return LuFactorization<T>(std::move(a)).solve(Matrix<T>::identity(n));
}

}  // namespace phes::la
