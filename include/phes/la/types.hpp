#pragma once
// Scalar and container aliases used across the library.

#include <complex>
#include <vector>

namespace phes::la {

using Real = double;
using Complex = std::complex<double>;

using RealVector = std::vector<Real>;
using ComplexVector = std::vector<Complex>;

/// Machine epsilon for Real.
inline constexpr Real kEps = 2.220446049250313e-16;

}  // namespace phes::la
