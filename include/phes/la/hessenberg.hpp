#pragma once
// Householder reduction to upper Hessenberg form (real and complex).

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"

namespace phes::la {

/// Result of a Hessenberg reduction A = Q H Q^T (or Q^H for complex).
template <typename T>
struct HessenbergResult {
  Matrix<T> h;  ///< upper Hessenberg
  Matrix<T> q;  ///< orthogonal/unitary accumulator (empty if not requested)
};

/// Reduce a real square matrix to Hessenberg form.
[[nodiscard]] HessenbergResult<Real> hessenberg_reduce(RealMatrix a,
                                                       bool accumulate_q);

/// Reduce a complex square matrix to Hessenberg form.
[[nodiscard]] HessenbergResult<Complex> hessenberg_reduce(
    ComplexMatrix a, bool accumulate_q);

}  // namespace phes::la
