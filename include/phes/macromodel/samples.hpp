#pragma once
// Tabulated frequency responses — the raw-data form macromodels are
// identified from (paper Sec. II: "frequency samples of the scattering
// matrix ... via electromagnetic simulation or direct measurement").
// This is the input format of the Vector Fitting substrate.

#include <cstddef>
#include <vector>

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"

namespace phes::macromodel {

class PoleResidueModel;

/// Samples {omega_k, H(j omega_k)} of a p x p transfer matrix.
struct FrequencySamples {
  la::RealVector omega;                ///< strictly increasing, rad/s
  std::vector<la::ComplexMatrix> h;    ///< one p x p matrix per omega

  [[nodiscard]] std::size_t count() const noexcept { return omega.size(); }
  [[nodiscard]] std::size_t ports() const noexcept {
    return h.empty() ? 0 : h.front().rows();
  }

  /// Validates monotone frequencies and consistent matrix sizes.
  void check_consistency() const;
};

/// Sample a model on a log-spaced grid of `count` points.
[[nodiscard]] FrequencySamples sample_model(const PoleResidueModel& model,
                                            double omega_min,
                                            double omega_max,
                                            std::size_t count);

/// Worst-case relative fit error  max_k ||Ha(jw_k) - Hb(jw_k)||_F /
/// max_k ||Hb(jw_k)||_F between a model and reference samples.
[[nodiscard]] double max_relative_error(const PoleResidueModel& model,
                                        const FrequencySamples& reference);

}  // namespace phes::macromodel
