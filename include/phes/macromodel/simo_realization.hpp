#pragma once
// The structured state-space realization of paper Eq. 2:
//
//   A = blkdiag{A_k},  B = blkdiag{u_k},  C = [C_1 ... C_p]
//
// where A_k holds the poles of column k (1x1 blocks for real poles,
// 2x2 rotation-form blocks [[alpha, beta], [-beta, alpha]] for complex
// pairs after the real transformation of [9]) and u_k excites every
// block of its column.  A has at most 2n nonzeros and B at most n, so
// A x, B u, (A +- theta I)^{-1} x and H(s) all cost O(n) / O(n p).
//
// This structure is what makes the Sherman-Morrison-Woodbury
// shift-and-invert operator (hamiltonian/shift_invert.hpp) linear in n,
// which in turn is what makes the Krylov eigensolver viable.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"
#include "phes/macromodel/pole_residue.hpp"
#include "phes/macromodel/statespace.hpp"
#include "phes/util/check.hpp"

namespace phes::macromodel {

/// One diagonal block of A.
struct SimoBlock {
  std::size_t state = 0;   ///< index of the block's first state
  std::size_t column = 0;  ///< owning port column (0-based)
  bool is_pair = false;    ///< false: 1x1 real pole; true: 2x2 pair
  double alpha = 0.0;      ///< real pole value, or Re(pole) for pairs
  double beta = 0.0;       ///< Im(pole) for pairs (beta > 0)
};

/// Sparse-structured realization; immutable after construction except
/// for the residue matrix C (which passivity enforcement perturbs).
class SimoRealization {
 public:
  /// Build from a pole-residue model (complex pairs are converted to the
  /// real 2x2 form; the C entries become [2 Re r, 2 Im r]).
  explicit SimoRealization(const PoleResidueModel& model);

  [[nodiscard]] std::size_t ports() const noexcept { return d_.rows(); }
  [[nodiscard]] std::size_t order() const noexcept { return order_; }
  [[nodiscard]] const std::vector<SimoBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] const RealMatrix& c() const noexcept { return c_; }
  [[nodiscard]] RealMatrix& c() noexcept { return c_; }
  [[nodiscard]] const RealMatrix& d() const noexcept { return d_; }

  /// Largest pole magnitude.
  [[nodiscard]] double max_pole_magnitude() const noexcept;

  // -- Structured kernels (templated over real/complex scalar) ----------

  /// y = A x.
  template <typename T>
  void apply_a(std::span<const T> x, std::span<T> y) const {
    util::check(x.size() == order_ && y.size() == order_,
                "SimoRealization::apply_a: size mismatch");
    for (const auto& blk : blocks_) {
      if (blk.is_pair) {
        const T x1 = x[blk.state], x2 = x[blk.state + 1];
        y[blk.state] = blk.alpha * x1 + blk.beta * x2;
        y[blk.state + 1] = -blk.beta * x1 + blk.alpha * x2;
      } else {
        y[blk.state] = blk.alpha * x[blk.state];
      }
    }
  }

  /// y = A^T x.
  template <typename T>
  void apply_at(std::span<const T> x, std::span<T> y) const {
    util::check(x.size() == order_ && y.size() == order_,
                "SimoRealization::apply_at: size mismatch");
    for (const auto& blk : blocks_) {
      if (blk.is_pair) {
        const T x1 = x[blk.state], x2 = x[blk.state + 1];
        y[blk.state] = blk.alpha * x1 - blk.beta * x2;
        y[blk.state + 1] = blk.beta * x1 + blk.alpha * x2;
      } else {
        y[blk.state] = blk.alpha * x[blk.state];
      }
    }
  }

  /// y = (A - s I)^{-1} x with complex s.  O(n).
  void solve_a_minus(Complex s, std::span<const Complex> x,
                     std::span<Complex> y) const;

  /// y = (A^T - s I)^{-1} x with complex s.  O(n).
  void solve_at_minus(Complex s, std::span<const Complex> x,
                      std::span<Complex> y) const;

  /// x = B u (scatter each port input into its column's blocks).
  template <typename T>
  void apply_b(std::span<const T> u, std::span<T> x) const {
    util::check(u.size() == ports() && x.size() == order_,
                "SimoRealization::apply_b: size mismatch");
    for (auto& v : x) v = T{};
    for (const auto& blk : blocks_) {
      x[blk.state] = u[blk.column];  // pair second state stays 0
    }
  }

  /// u = B^T x.
  template <typename T>
  void apply_bt(std::span<const T> x, std::span<T> u) const {
    util::check(u.size() == ports() && x.size() == order_,
                "SimoRealization::apply_bt: size mismatch");
    for (auto& v : u) v = T{};
    for (const auto& blk : blocks_) {
      u[blk.column] += x[blk.state];
    }
  }

  /// y = C x (dense p x n product).
  void apply_c(std::span<const Complex> x, std::span<Complex> y) const;
  /// x = C^T y.
  void apply_ct(std::span<const Complex> y, std::span<Complex> x) const;

  /// Fast transfer-matrix evaluation H(s) = D + C (sI - A)^{-1} B using
  /// the block structure.  O(n p).
  [[nodiscard]] ComplexMatrix eval(Complex s) const;
  [[nodiscard]] ComplexMatrix eval(double omega) const {
    return eval(Complex(0.0, omega));
  }

  /// z = (sI - A)^{-1} B v for a single complex port vector v.  O(n).
  /// This is the linearization kernel used by passivity enforcement.
  void resolvent_b(Complex s, std::span<const Complex> v,
                   std::span<Complex> z) const;

  /// Expand to a dense {A, B, C, D} model (tests / dense baselines).
  [[nodiscard]] StateSpaceModel to_dense() const;

  /// Convert back to pole-residue form (inverse of the constructor);
  /// used after enforcement perturbs C.
  [[nodiscard]] PoleResidueModel to_pole_residue() const;

 private:
  std::size_t order_ = 0;
  std::vector<SimoBlock> blocks_;
  RealMatrix c_;  ///< p x n
  RealMatrix d_;  ///< p x p
};

}  // namespace phes::macromodel
