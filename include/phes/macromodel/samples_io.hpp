#pragma once
// Plain-text persistence for tabulated frequency responses — the
// interchange format between a field solver / VNA export and the
// Vector Fitting front end.  Format (self-describing header):
//
//   # phes-samples v1
//   ports <p>
//   points <K>
//   omega <w>            (repeated K times, each followed by p*p pairs)
//   <Re H(0,0)> <Im H(0,0)>  ... row-major ...
//
// Lines starting with '#' are comments.  All values are %.17g doubles.

#include <iosfwd>
#include <string>

#include "phes/macromodel/samples.hpp"

namespace phes::macromodel {

/// Serialize samples to a stream.  Throws on inconsistent input.
void save_samples(const FrequencySamples& samples, std::ostream& os);

/// Parse samples from a stream.  Throws std::runtime_error with a
/// "samples_io: line N:" prefix on malformed content: zero ports or
/// points, non-finite or non-numeric values, non-increasing
/// frequencies, and truncated records are all rejected.
[[nodiscard]] FrequencySamples load_samples(std::istream& is);

/// File-path convenience wrappers.
void save_samples_file(const FrequencySamples& samples,
                       const std::string& path);
[[nodiscard]] FrequencySamples load_samples_file(const std::string& path);

}  // namespace phes::macromodel
