#pragma once
// Gramian-based model metrics: controllability/observability gramians,
// Hankel singular values, and the Hankel-norm bound on the transfer
// perturbation introduced by passivity enforcement.
//
// For a stable model {A, B, C, D}:
//   A P + P A^T + B B^T = 0,    A^T Q + Q A + C^T C = 0,
//   sigma_H,i = sqrt(lambda_i(P Q)),
//   ||H||_inf <= 2 * sum_i sigma_H,i   (twice-sum Hankel bound).
//
// Enforcement perturbs only C (DeltaC), so the error system is
// {A, B, DeltaC, 0} and the bound applies to ||H_new - H_old||_inf
// directly — an a-posteriori certificate of model fidelity.

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/macromodel/statespace.hpp"

namespace phes::macromodel {

/// Controllability gramian P (solves A P + P A^T + B B^T = 0).
[[nodiscard]] la::RealMatrix controllability_gramian(
    const StateSpaceModel& model);

/// Observability gramian Q (solves A^T Q + Q A + C^T C = 0).
[[nodiscard]] la::RealMatrix observability_gramian(
    const StateSpaceModel& model);

/// Hankel singular values, descending (sqrt of eig(P Q), clamped at 0).
[[nodiscard]] la::RealVector hankel_singular_values(
    const StateSpaceModel& model);

/// Largest Hankel singular value (lower bound on ||H - D||_inf).
[[nodiscard]] double hankel_norm(const StateSpaceModel& model);

/// Upper bound  ||H||_inf <= 2 * sum sigma_H  (twice-sum rule).
[[nodiscard]] double hinf_upper_bound(const StateSpaceModel& model);

/// A-posteriori fidelity certificate for passivity enforcement: bound
/// on ||H_after - H_before||_inf from the residue perturbation
/// DeltaC = realization.c() - c_before (same A, B; D untouched).
[[nodiscard]] double perturbation_hinf_bound(
    const SimoRealization& realization, const la::RealMatrix& c_before);

}  // namespace phes::macromodel
