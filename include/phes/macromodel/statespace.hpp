#pragma once
// Dense state-space model {A, B, C, D} — the generic realization of
// paper Eq. 1.  Used as the reference implementation the structured
// SIMO realization is validated against, and as the input format of the
// dense Hamiltonian builder.

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"

namespace phes::macromodel {

using la::Complex;
using la::ComplexMatrix;
using la::RealMatrix;

/// H(s) = D + C (sI - A)^{-1} B with real matrices.
struct StateSpaceModel {
  RealMatrix a;  ///< n x n
  RealMatrix b;  ///< n x p
  RealMatrix c;  ///< p x n
  RealMatrix d;  ///< p x p

  [[nodiscard]] std::size_t order() const noexcept { return a.rows(); }
  [[nodiscard]] std::size_t ports() const noexcept { return d.rows(); }

  /// Validates the shape contract; throws std::invalid_argument.
  void check_shapes() const;

  /// Evaluate H(s) by dense LU solve.  O(n^3); reference only.
  [[nodiscard]] ComplexMatrix eval(Complex s) const;
  [[nodiscard]] ComplexMatrix eval(double omega) const {
    return eval(Complex(0.0, omega));
  }
};

}  // namespace phes::macromodel
