#pragma once
// Balanced-truncation model order reduction (Moore / Glover) on top of
// the gramian machinery — the step that produces the "reduced-order
// macromodels" of the paper's opening sentence when a first-principles
// model is too large.
//
// Square-root algorithm:
//   P = Lp Lp^T, Q = Lq Lq^T        (gramian factors)
//   Lq^T Lp = U S V^T               (SVD; S = Hankel singular values)
//   T  = Lp V S^{-1/2},  Tinv = S^{-1/2} U^T Lq^T
//   (A, B, C) -> (Tinv A T, Tinv B, C T), keep the leading k states.
//
// The classic twice-sum error bound applies:
//   ||H - H_k||_inf <= 2 * sum_{i>k} sigma_H,i.

#include <cstddef>

#include "phes/macromodel/statespace.hpp"

namespace phes::macromodel {

struct ReductionResult {
  StateSpaceModel reduced;      ///< k-state balanced truncation
  la::RealVector hankel_sv;     ///< full-order HSVs, descending
  double error_bound = 0.0;     ///< 2 * sum of discarded HSVs
};

/// Reduce a stable model to `target_order` states.  Throws
/// std::invalid_argument for target_order == 0 or >= current order, and
/// std::runtime_error when the gramian factors are numerically rank
/// deficient below the requested order.
[[nodiscard]] ReductionResult balanced_truncation(
    const StateSpaceModel& model, std::size_t target_order);

/// Smallest order whose twice-sum bound is below `tolerance` (absolute,
/// in transfer-function units).
[[nodiscard]] std::size_t order_for_tolerance(const la::RealVector& hsv,
                                              double tolerance);

}  // namespace phes::macromodel
