#pragma once
// Pole-residue macromodels (the natural output of Vector Fitting).
//
// The paper (Sec. II) assumes a multi-SIMO structure: the p x p transfer
// matrix H(s) is fitted column by column, column k owning its own set of
// m_k poles shared by all p entries of that column:
//
//   H(:,k)(s) = D(:,k) + sum_i  r_i / (s - a_i)              (real poles)
//             + sum_j  [ r_j / (s - l_j) + r_j* / (s - l_j*) ] (pairs)
//
// with p-vector residues r.  Complex poles are stored once with
// Im(pole) > 0, the conjugate term being implicit.

#include <complex>
#include <cstddef>
#include <vector>

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"

namespace phes::macromodel {

using la::Complex;
using la::ComplexMatrix;
using la::ComplexVector;
using la::RealMatrix;
using la::RealVector;

/// One real pole with its p-vector residue.
struct RealPoleTerm {
  double pole = 0.0;      ///< strictly negative for a stable model
  RealVector residue;     ///< p entries
};

/// One complex-conjugate pole pair; only the Im > 0 member is stored.
struct ComplexPoleTerm {
  Complex pole{};         ///< Re < 0, Im > 0
  ComplexVector residue;  ///< p entries (conjugate term implicit)
};

/// All poles/residues belonging to one column of H(s).
struct PoleResidueColumn {
  std::vector<RealPoleTerm> real_terms;
  std::vector<ComplexPoleTerm> complex_terms;

  /// Number of states this column contributes (pairs count twice).
  [[nodiscard]] std::size_t order() const noexcept {
    return real_terms.size() + 2 * complex_terms.size();
  }
};

/// A full p-port scattering macromodel in pole-residue form.
class PoleResidueModel {
 public:
  PoleResidueModel() = default;
  PoleResidueModel(RealMatrix d, std::vector<PoleResidueColumn> columns);

  [[nodiscard]] std::size_t ports() const noexcept { return columns_.size(); }

  /// Total dynamic order n (paper notation).
  [[nodiscard]] std::size_t order() const noexcept;

  [[nodiscard]] const RealMatrix& d() const noexcept { return d_; }
  [[nodiscard]] RealMatrix& d() noexcept { return d_; }
  [[nodiscard]] const std::vector<PoleResidueColumn>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::vector<PoleResidueColumn>& columns() noexcept {
    return columns_;
  }

  /// Evaluate the p x p transfer matrix at s = j*omega.  O(n*p).
  [[nodiscard]] ComplexMatrix eval(double omega) const;

  /// Evaluate at arbitrary complex s.
  [[nodiscard]] ComplexMatrix eval(Complex s) const;

  /// True when every pole has strictly negative real part.
  [[nodiscard]] bool is_stable() const noexcept;

  /// Largest pole magnitude (used to bound the Hamiltonian search band).
  [[nodiscard]] double max_pole_magnitude() const noexcept;

 private:
  RealMatrix d_;
  std::vector<PoleResidueColumn> columns_;
};

}  // namespace phes::macromodel
