#pragma once
// Time-domain co-simulation of a scattering macromodel terminated by
// resistive loads — the experiment behind the paper's motivation:
// "Non-passive macromodels do not guarantee the global stability of
// transient simulations, due to their ability to amplify the energy
// they are fed with" (Sec. I).
//
// The macromodel is the scattering relation b = H(s) a between incident
// waves a and reflected waves b (reference impedance Z0).  Terminating
// every port with a resistor R_k and source e_k closes the loop:
//
//   a = Gamma b + c,   Gamma = diag((R_k - Z0)/(R_k + Z0)),
//                      c_k   = e_k * sqrt(Z0) / (R_k + Z0) * ...
//
// (the exact source scaling is irrelevant for the stability question;
// we drive with a unit incident-wave pulse).  With H in state-space
// form the closed loop is
//
//   dx/dt = A x + B a,   b = C x + D a,   a = Gamma b + c
//   =>  dx/dt = (A + B Gamma K C) x + B (I + Gamma K D - ...) ...
//
// solved here by the trapezoidal rule (the integrator SPICE-class
// solvers use), which is A-stable: any blow-up observed is a property
// of the model, not of the integrator.  A passive model terminated by
// passive loads can only dissipate the injected energy; a non-passive
// model can amplify it, and for |Gamma| close to 1 the closed loop has
// right-half-plane poles.

#include <cstddef>

#include "phes/la/types.hpp"
#include "phes/macromodel/simo_realization.hpp"

namespace phes::macromodel {

struct TransientOptions {
  double dt = 1e-3;            ///< time step (in the model's time units)
  std::size_t steps = 20000;   ///< number of trapezoidal steps
  /// Reflection coefficient of every termination (|gamma| <= 1 is a
  /// passive load; gamma = -1 is a short, 0 a match, +1 an open).
  double termination_gamma = -0.95;
  /// Optional per-port reflection coefficients; overrides
  /// termination_gamma when non-empty (size p, each |gamma_k| <= 1).
  la::RealVector termination_gammas;
  /// Width of the raised-cosine incident pulse on port 0.
  double pulse_width = 1.0;
  /// Declare blow-up when the state norm exceeds this multiple of the
  /// peak norm observed during the pulse.
  double blowup_factor = 1e6;
};

struct TransientResult {
  bool blew_up = false;      ///< state norm exceeded the blow-up bound
  double peak_state_norm = 0.0;
  double final_state_norm = 0.0;
  /// Total incident / reflected wave energy at the ports (trapezoidal
  /// accumulation of |a|^2 and |b|^2); a passive model in a passive
  /// termination cannot sustain reflected_energy > incident_energy.
  double incident_energy = 0.0;
  double reflected_energy = 0.0;
  std::size_t steps_run = 0;
};

/// Simulate the resistively-terminated macromodel driven by one pulse.
/// O(steps * n * p) using the structured realization.
[[nodiscard]] TransientResult simulate_terminated(
    const SimoRealization& realization, const TransientOptions& options);

/// Open-loop (matched termination) energy-gain measurement: drive the
/// incident waves with a windowed sinusoid a(t) = Re(v e^{jwt}) and
/// integrate reflected vs incident energy.  For v equal to the right
/// singular vector of H(jw) the measured gain converges (long windows)
/// to sigma(H(jw))^2 — the time-domain face of the frequency-domain
/// passivity test, used to cross-validate the Hamiltonian
/// characterization.
struct EnergyGainOptions {
  double omega = 1.0;              ///< drive frequency (rad/s)
  la::ComplexVector port_vector;   ///< complex p-vector (defaults e_0)
  std::size_t cycles = 200;        ///< sinusoid cycles to integrate
  std::size_t steps_per_cycle = 64;
  double ramp_fraction = 0.1;      ///< raised-cosine turn-on fraction
};

struct EnergyGainResult {
  double incident_energy = 0.0;
  double reflected_energy = 0.0;
  /// reflected / incident — compare with sigma(H(jw))^2.
  double gain = 0.0;
};

[[nodiscard]] EnergyGainResult measure_energy_gain(
    const SimoRealization& realization, const EnergyGainOptions& options);

}  // namespace phes::macromodel
