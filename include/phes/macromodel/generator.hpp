#pragma once
// Synthetic macromodel generation.
//
// The paper evaluates on 12 proprietary interconnect macromodels (IBM
// packaging).  Those are not available, so this generator builds
// surrogate scattering macromodels with the same knobs that drive the
// eigensolver's cost: dynamic order n, port count p, pole spread over
// the band, damping (how close Hamiltonian eigenvalues sit to the
// imaginary axis), and the peak gain max_w sigma_max(H(jw)) which
// controls whether/how many unit-singular-value crossings exist.
//
// DESIGN.md documents this substitution; EXPERIMENTS.md records the
// measured crossing counts next to the paper's.

#include <cstdint>

#include "phes/macromodel/pole_residue.hpp"

namespace phes::macromodel {

/// Knobs for make_synthetic_model().
struct SyntheticModelSpec {
  std::size_t ports = 4;
  std::size_t states = 100;  ///< requested total order n (met exactly)
  double omega_min = 1.0;    ///< lower edge of the resonance band (rad/s)
  double omega_max = 10.0;   ///< upper edge of the resonance band (rad/s)
  double min_damping = 0.005;  ///< zeta range for complex pole pairs
  double max_damping = 0.08;
  double real_pole_fraction = 0.12;  ///< share of 1x1 blocks (approx.)
  /// Peak of sigma_max(H(jw)) after residue scaling.  > 1 makes the
  /// model non-passive with unit-threshold crossings; < 1 keeps it
  /// passive but (when close to 1) with Hamiltonian eigenvalues near
  /// the imaginary axis — the expensive passive case of paper Table I
  /// (Cases 4 and 6).
  double target_peak_gain = 1.05;
  std::size_t gain_tuning_grid = 400;  ///< sweep points used for scaling
  double d_norm = 0.2;                 ///< sigma_max(D), must be < 1
  std::uint64_t seed = 1;
};

/// Build a random stable scattering macromodel per the spec.
[[nodiscard]] PoleResidueModel make_synthetic_model(
    const SyntheticModelSpec& spec);

}  // namespace phes::macromodel
