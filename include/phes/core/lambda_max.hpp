#pragma once
// Search-band upper bound (paper Sec. IV-A): omega_max is the magnitude
// of the largest Hamiltonian eigenvalue, obtained with a plain Arnoldi
// iteration on M itself (no shift-and-invert).

#include <cstdint>

#include "phes/la/kernels.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/util/rng.hpp"

namespace phes::core {

struct LambdaMaxOptions {
  std::size_t krylov_dim = 40;
  std::size_t restarts = 3;
  double safety_factor = 1.05;  ///< Ritz values underestimate |lambda|max
  /// Compute substrate for the implicit-operator applies and the
  /// Arnoldi orthogonalization (see la/kernels.hpp).
  la::KernelBackend kernel = la::KernelBackend::kTuned;
};

/// Estimate plus its cost, so callers (and warm-started re-solves that
/// skip the estimate) can account for the Arnoldi work it spends.
struct LambdaMaxEstimate {
  double omega_max = 0.0;
  std::size_t matvecs = 0;
};

/// Estimate (a safe upper bound of) the Hamiltonian spectral radius,
/// reporting the matrix-vector products spent.
[[nodiscard]] LambdaMaxEstimate estimate_lambda_max_counted(
    const macromodel::SimoRealization& realization,
    const LambdaMaxOptions& options, util::Rng& rng);

/// Estimate (a safe upper bound of) the Hamiltonian spectral radius.
[[nodiscard]] double estimate_lambda_max(
    const macromodel::SimoRealization& realization,
    const LambdaMaxOptions& options, util::Rng& rng);

}  // namespace phes::core
