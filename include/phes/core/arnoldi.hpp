#pragma once
// Arnoldi process with deflation (paper Sec. III).
//
// Builds an orthonormal basis V_d of the Krylov subspace
//   span{ v1, Op v1, ..., Op^{d-1} v1 }
// by modified Gram-Schmidt with one reorthogonalization pass, while
// keeping every basis vector orthogonal to a set of locked (previously
// converged) Ritz vectors — the "incremental deflation" of [9].  The
// Galerkin projection returns the (d+1) x d Hessenberg matrix whose
// eigenpairs approximate the operator's dominant eigenpairs.

#include <span>
#include <vector>

#include "phes/hamiltonian/operators.hpp"
#include "phes/la/kernels.hpp"
#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"
#include "phes/util/rng.hpp"

namespace phes::core {

using la::Complex;
using la::ComplexMatrix;
using la::ComplexVector;

/// Output of one Arnoldi run.
struct ArnoldiResult {
  /// (steps+1) x dim basis, one orthonormal vector per ROW (contiguous
  /// rows keep the Gram-Schmidt inner loops cache-friendly).
  ComplexMatrix v_rows;
  ComplexMatrix h;    ///< (steps+1) x steps Hessenberg projection
  std::size_t steps = 0;  ///< completed steps (< d on lucky breakdown)
  std::size_t matvecs = 0;
};

/// One approximate eigenpair extracted from the projection.
struct RitzPair {
  Complex value{};       ///< eigenvalue of the *operator* (e.g. mu)
  double residual = 0.0; ///< ||Op x - mu x|| estimate
  ComplexVector vector;  ///< Ritz vector in the full space (unit norm)
};

/// Run `d` Arnoldi steps from start vector v0 (need not be normalized).
/// `locked` vectors are deflated: the basis is kept orthogonal to them.
/// Throws std::invalid_argument on dimension mismatches.
///
/// `backend` selects the orthogonalization kernel: kReference keeps the
/// original modified Gram-Schmidt pass (vector-at-a-time, immediate
/// subtraction) bit for bit; kTuned uses blocked classical Gram-Schmidt
/// with a full reorthogonalization pass (CGS2) — all projections
/// against the un-updated w are computed with the row-paired
/// multi-accumulator dot kernels, then subtracted en bloc.  Both run
/// two passes ("twice is enough") and agree to rounding.
[[nodiscard]] ArnoldiResult arnoldi(
    const hamiltonian::ComplexLinearOperator& op,
    std::span<const Complex> v0, std::size_t d,
    std::span<const ComplexVector> locked,
    la::KernelBackend backend = la::KernelBackend::kTuned);

/// Ritz pairs of an Arnoldi result, sorted by descending |value|
/// (for shift-inverted operators this is ascending distance from the
/// shift).  Residuals use the h(d+1,d) * |last component| bound.
[[nodiscard]] std::vector<RitzPair> ritz_pairs(const ArnoldiResult& ar,
                                               bool want_vectors);

/// Random complex start vector of unit norm.
[[nodiscard]] ComplexVector random_start_vector(std::size_t dim,
                                                util::Rng& rng);

}  // namespace phes::core
