#pragma once
// Interval / shift bookkeeping for the parallel multi-shift scheduler
// (paper Sec. IV).  Pure single-threaded logic: the thread scheduler
// calls these under one mutex, so the rules (startup Eqs. 13-15, pick
// Eq. 20, cover Eq. 24, split Eqs. 25-28, termination Eq. 29) can be
// unit-tested deterministically.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "phes/la/types.hpp"

namespace phes::core {

/// A tentative interval with its tentative shift (paper's
/// I~_nu = [I~L, I~U] with shift theta~_nu).
struct TentativeInterval {
  double lo = 0.0;
  double hi = 0.0;
  double shift = 0.0;       ///< in [lo, hi]
  std::uint64_t id = 0;     ///< stable id; also keys the RNG stream
  /// Warm-start initial clean-disk radius; 0 lets the solver derive
  /// rho0 from the interval width (Eq. 23).  A re-solve of an unchanged
  /// model seeds each previous shift with its previously certified
  /// radius so the disk plan reproduces without exploratory splits.
  double rho0 = 0.0;
};

/// A certified clean disk produced by a completed single-shift run.
struct CompletedDisk {
  double center = 0.0;
  double radius = 0.0;
  la::ComplexVector eigenvalues;  ///< eigenvalues inside the disk
};

/// Warm-start seed plan: shift frequencies plus (optionally) the clean
/// radii their disks certified last time.
struct SeedPlan {
  la::RealVector shifts;  ///< sorted, strictly inside the band
  la::RealVector radii;   ///< parallel to shifts, or empty
};

/// Sort the seeds, drop those outside (omega_min, omega_max), and merge
/// seeds closer than `min_gap` (the survivor is the first of each
/// cluster).  `radii` may be empty or parallel to `shifts`; kept radii
/// stay paired.  Kept shift values are returned EXACTLY as given —
/// warm-start prefetching relies on bitwise-equal shifts for its cache
/// keys.
[[nodiscard]] SeedPlan plan_seeds(double omega_min, double omega_max,
                                  const la::RealVector& shifts,
                                  const la::RealVector& radii,
                                  double min_gap);

/// Warm-start startup rule: partition [omega_min, omega_max] so that
/// every seed is the tentative shift of its own interval (boundaries at
/// midpoints between consecutive seeds), then split the widest
/// intervals until at least `n_intervals` exist so every solver thread
/// finds startup work.  The plan must come from plan_seeds (sorted,
/// in-band, separated); per-seed radii become the intervals' rho0.
/// Seed intervals are queued first — the previous solve's shifts are
/// the most informative, so they are processed before fill-in work.
[[nodiscard]] std::vector<TentativeInterval> seeded_partition(
    double omega_min, double omega_max, const SeedPlan& plan,
    std::size_t n_intervals, double min_width);

/// Shift-queue state machine.  Invariants (checked in tests):
///  - tentative intervals never overlap each other or in-flight ones;
///  - an interval is handed out at most once (Eq. 20);
///  - at termination the certified disks cover [omega_min, omega_max]
///    up to the configured resolution.
class IntervalScheduler {
 public:
  /// Subdivide [omega_min, omega_max] into n_intervals = kappa * threads
  /// pieces with shifts per the paper's startup rule: first interval's
  /// shift at omega_min, last at omega_max, others centered; queue
  /// ordered so the band extrema are processed first (Eqs. 13-15).
  IntervalScheduler(double omega_min, double omega_max,
                    std::size_t n_intervals, double min_interval_width);

  /// Start from an explicit set of disjoint intervals (used by the
  /// static-grid baseline to mop up coverage gaps).  Queue order is the
  /// given order; ids are reassigned.
  IntervalScheduler(std::vector<TentativeInterval> intervals,
                    double omega_min, double omega_max,
                    double min_interval_width);

  /// Pops the next free tentative interval (Eq. 20); nullopt when the
  /// tentative queue is momentarily empty (in-flight work may still
  /// split and refill it).
  [[nodiscard]] std::optional<TentativeInterval> acquire();

  /// Apply the completion rules for a disk of radius `rho` certified
  /// around `interval.shift`:
  ///  - covered part of the interval is retired;
  ///  - uncovered outer portions become new tentative intervals with
  ///    centered shifts (Eqs. 25-28);
  ///  - tentative shifts swallowed by the disk are deleted (Eq. 24).
  void complete(const TentativeInterval& interval, double rho,
                la::ComplexVector eigenvalues);

  /// Termination test (Eq. 29): no tentative and no in-flight work.
  [[nodiscard]] bool done() const noexcept {
    return tentative_.empty() && in_flight_ == 0;
  }

  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }
  [[nodiscard]] std::size_t tentative_count() const noexcept {
    return tentative_.size();
  }
  /// Number of tentative shifts deleted by the cover rule without ever
  /// being processed (the source of superlinear speedups, Sec. V).
  [[nodiscard]] std::size_t shifts_eliminated() const noexcept {
    return eliminated_;
  }
  [[nodiscard]] const std::vector<CompletedDisk>& disks() const noexcept {
    return completed_;
  }
  [[nodiscard]] double omega_min() const noexcept { return omega_min_; }
  [[nodiscard]] double omega_max() const noexcept { return omega_max_; }

  /// All eigenvalues from all completed disks (duplicates possible when
  /// disks overlap; callers cluster).
  [[nodiscard]] la::ComplexVector all_eigenvalues() const;

 private:
  std::uint64_t next_id_ = 0;
  double omega_min_ = 0.0;
  double omega_max_ = 0.0;
  double min_width_ = 0.0;
  std::deque<TentativeInterval> tentative_;
  std::vector<CompletedDisk> completed_;
  std::size_t in_flight_ = 0;
  std::size_t eliminated_ = 0;
};

}  // namespace phes::core
