#pragma once
// Public facade: the parallel Hamiltonian eigensolver (the paper's
// headline contribution).
//
// Finds the complete set Omega of purely imaginary eigenvalues of the
// Hamiltonian associated with a structured scattering macromodel, by
// running single-shift Arnoldi iterations concurrently under the
// dynamic shift-scheduling strategy of Sec. IV.  A static
// pre-distributed-grid scheduler — the strawman the paper dismisses —
// is included for the scalability ablation.

#include <cstdint>
#include <vector>

#include "phes/core/intervals.hpp"
#include "phes/core/lambda_max.hpp"
#include "phes/core/single_shift.hpp"
#include "phes/la/types.hpp"
#include "phes/macromodel/simo_realization.hpp"

namespace phes::core {

/// Scheduling strategy for distributing shifts over threads.
enum class SchedulingMode {
  kDynamic,  ///< paper Sec. IV: work queue with cover/split updates
  kStaticGrid,  ///< fixed uniform grid, gaps mopped up afterwards
};

/// Solver configuration; defaults follow the paper's reported settings.
struct SolverOptions {
  std::size_t threads = 1;
  /// N = kappa * threads initial intervals, kappa >= 2 (Sec. IV-A).
  std::size_t kappa = 2;
  /// Initial-radius overlap factor alpha >~ 1 (Eq. 23).
  double alpha = 1.05;
  double omega_min = 0.0;
  /// Upper band edge; <= 0 requests the |lambda_max| estimate.
  double omega_max = 0.0;
  SingleShiftOptions shift{};
  LambdaMaxOptions lambda_max{};
  SchedulingMode scheduling = SchedulingMode::kDynamic;
  std::uint64_t seed = 1;
  /// Relative |Re lambda| threshold for "purely imaginary".
  double imag_tol = 1e-6;
  /// Band-relative resolution: intervals thinner than
  /// resolution * (omega_max - omega_min) count as covered.
  double resolution = 1e-9;
};

/// Per-shift execution record (diagnostics and scheduling ablations).
struct ShiftRecord {
  double center = 0.0;
  double radius = 0.0;
  std::size_t eigenvalues_found = 0;
  std::size_t restarts = 0;
  std::size_t matvecs = 0;
  double seconds = 0.0;
  std::size_t thread = 0;
};

/// Solve outcome.
struct SolverResult {
  /// Omega: sorted positive crossing frequencies (empty => passive).
  la::RealVector crossings;
  bool passive = false;
  /// All (deduplicated) eigenvalues found in the certified disks.
  la::ComplexVector eigenvalues;
  double omega_min = 0.0;
  double omega_max = 0.0;
  double seconds = 0.0;
  std::size_t shifts_processed = 0;
  std::size_t shifts_eliminated = 0;  ///< dropped by the cover rule
  std::size_t total_matvecs = 0;
  std::vector<ShiftRecord> shift_log;
  std::vector<CompletedDisk> disks;   ///< for coverage verification
};

class ParallelHamiltonianEigensolver {
 public:
  /// Keeps a reference to `realization` (caller guarantees lifetime).
  explicit ParallelHamiltonianEigensolver(
      const macromodel::SimoRealization& realization);

  /// Run the multi-shift search.  Thread-safe: concurrent solve() calls
  /// on one instance are allowed (all state is per-call).
  [[nodiscard]] SolverResult solve(const SolverOptions& options) const;

 private:
  [[nodiscard]] SolverResult run_scheduler(IntervalScheduler scheduler,
                                           const SolverOptions& options,
                                           double band_lo,
                                           double band_hi) const;

  /// Static strawman: every grid shift is processed unconditionally
  /// (no cover-rule elimination), then coverage gaps are finished with
  /// a dynamic pass so the result stays complete.
  [[nodiscard]] SolverResult run_static_grid(const SolverOptions& options,
                                             double band_lo,
                                             double band_hi) const;

  void finalize_result(SolverResult& result, const SolverOptions& options,
                       double band_hi) const;

  const macromodel::SimoRealization& realization_;
};

}  // namespace phes::core
