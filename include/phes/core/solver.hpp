#pragma once
// Public facade: the parallel Hamiltonian eigensolver (the paper's
// headline contribution).
//
// Finds the complete set Omega of purely imaginary eigenvalues of the
// Hamiltonian associated with a structured scattering macromodel, by
// running single-shift Arnoldi iterations concurrently under the
// dynamic shift-scheduling strategy of Sec. IV.  A static
// pre-distributed-grid scheduler — the strawman the paper dismisses —
// is included for the scalability ablation.

#include <cstdint>
#include <vector>

#include "phes/core/intervals.hpp"
#include "phes/core/lambda_max.hpp"
#include "phes/core/single_shift.hpp"
#include "phes/hamiltonian/shift_invert.hpp"
#include "phes/la/types.hpp"
#include "phes/macromodel/simo_realization.hpp"

namespace phes::core {

/// Scheduling strategy for distributing shifts over threads.
enum class SchedulingMode {
  kDynamic,  ///< paper Sec. IV: work queue with cover/split updates
  kStaticGrid,  ///< fixed uniform grid, gaps mopped up afterwards
};

/// Solver configuration; defaults follow the paper's reported settings.
struct SolverOptions {
  std::size_t threads = 1;
  /// N = kappa * threads initial intervals, kappa >= 2 (Sec. IV-A).
  std::size_t kappa = 2;
  /// Initial-radius overlap factor alpha >~ 1 (Eq. 23).
  double alpha = 1.05;
  double omega_min = 0.0;
  /// Upper band edge; <= 0 requests the |lambda_max| estimate.
  double omega_max = 0.0;
  SingleShiftOptions shift{};
  LambdaMaxOptions lambda_max{};
  SchedulingMode scheduling = SchedulingMode::kDynamic;
  std::uint64_t seed = 1;
  /// Relative |Re lambda| threshold for "purely imaginary".
  double imag_tol = 1e-6;
  /// Band-relative resolution: intervals thinner than
  /// resolution * (omega_max - omega_min) count as covered.
  double resolution = 1e-9;
  /// Compute substrate for the whole solve path; solve() propagates it
  /// into `shift.kernel` and `lambda_max.kernel` so one switch flips
  /// every kernel (see la/kernels.hpp for the tuned/reference
  /// contract).
  la::KernelBackend kernel = la::KernelBackend::kTuned;
};

/// Per-shift execution record (diagnostics and scheduling ablations).
struct ShiftRecord {
  double center = 0.0;
  double radius = 0.0;
  std::size_t eigenvalues_found = 0;
  std::size_t restarts = 0;
  std::size_t matvecs = 0;
  double seconds = 0.0;
  std::size_t thread = 0;
};

/// Solve outcome.
struct SolverResult {
  /// Omega: sorted positive crossing frequencies (empty => passive).
  la::RealVector crossings;
  bool passive = false;
  /// All (deduplicated) eigenvalues found in the certified disks.
  la::ComplexVector eigenvalues;
  double omega_min = 0.0;
  double omega_max = 0.0;
  double seconds = 0.0;
  std::size_t shifts_processed = 0;
  std::size_t shifts_eliminated = 0;  ///< dropped by the cover rule
  /// All matrix-vector products spent, including the |lambda|max band
  /// estimate (a warm-started re-solve skips that estimate entirely).
  std::size_t total_matvecs = 0;
  std::size_t lambda_max_matvecs = 0;  ///< band-estimate share of the total
  std::vector<ShiftRecord> shift_log;
  std::vector<CompletedDisk> disks;   ///< for coverage verification

  // -- Session / warm-start diagnostics (engine::SolverSession) --------
  bool warm_started = false;     ///< scheduler seeded from a prior solve
  std::size_t seeded_shifts = 0; ///< seed intervals injected at startup
  std::size_t factorizations = 0;  ///< shift-invert operators built
  std::size_t cache_hits = 0;      ///< factorization-cache hits
  std::size_t cache_misses = 0;    ///< factorization-cache misses
};

/// Warm-start seeds for a re-solve (produced by engine::SolverSession
/// from the previous outcome on the same model family).
struct WarmStartSeeds {
  /// Seed shift frequencies; each becomes a startup interval's
  /// tentative shift (dynamic mode only).
  la::RealVector shifts;
  /// Previously certified clean radii, parallel to `shifts` (or empty):
  /// a same-revision re-solve starts each disk at its proven size
  /// instead of re-deriving it from the interval width.
  la::RealVector radii;
  /// Known band edge from the previous solve; > omega_min skips the
  /// |lambda|max Arnoldi estimate when no explicit omega_max is set.
  double band_hint = 0.0;
};

/// Per-solve dependency hooks.  Default-constructed context reproduces
/// the classic cold solve bit for bit.
struct SolveContext {
  /// Routes shift-invert construction (e.g. through a factorization
  /// cache).  Empty => build one operator per shift from scratch.
  hamiltonian::ShiftInvertFactory factory;
  /// Scheduler seeding; nullptr => the paper's uniform startup grid.
  const WarmStartSeeds* seeds = nullptr;
  /// Confirmation re-solve of an unchanged model: intervals that carry
  /// a previously certified radius (rho0 > 0) run with min_restarts
  /// capped at 1 — the recorded solve already paid their
  /// explicit-restart insurance.  Fresh fill/mop-up intervals keep the
  /// full restart policy.
  bool confirm_seeded = false;
};

/// The exact seed plan solve() will hand the scheduler for `options`
/// on band [band_lo, band_hi] — the single source of truth for the
/// seed filter, exposed so engine::SolverSession can prefetch
/// factorizations for bitwise-identical shift keys.  Empty when the
/// scheduling mode or seed set yields no seeded startup.
[[nodiscard]] SeedPlan planned_seeds(const SolverOptions& options,
                                     double band_lo, double band_hi,
                                     const WarmStartSeeds& seeds);

class ParallelHamiltonianEigensolver {
 public:
  /// Keeps a reference to `realization` (caller guarantees lifetime).
  explicit ParallelHamiltonianEigensolver(
      const macromodel::SimoRealization& realization);

  /// Run the multi-shift search.  Thread-safe: concurrent solve() calls
  /// on one instance are allowed (all state is per-call).
  [[nodiscard]] SolverResult solve(const SolverOptions& options) const;

  /// Same search with per-solve hooks: a shift-invert factory (cache)
  /// and warm-start scheduler seeds.
  [[nodiscard]] SolverResult solve(const SolverOptions& options,
                                   const SolveContext& context) const;

 private:
  [[nodiscard]] SolverResult run_scheduler(IntervalScheduler scheduler,
                                           const SolverOptions& options,
                                           const SolveContext& context,
                                           double band_lo,
                                           double band_hi) const;

  /// Static strawman: every grid shift is processed unconditionally
  /// (no cover-rule elimination), then coverage gaps are finished with
  /// a dynamic pass so the result stays complete.
  [[nodiscard]] SolverResult run_static_grid(const SolverOptions& options,
                                             const SolveContext& context,
                                             double band_lo,
                                             double band_hi) const;

  void finalize_result(SolverResult& result, const SolverOptions& options,
                       double band_hi) const;

  const macromodel::SimoRealization& realization_;
};

}  // namespace phes::core
