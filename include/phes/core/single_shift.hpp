#pragma once
// The single-shift iteration S(theta, rho0) -> ({lambda_k}, rho)
// (paper Sec. III, Fig. 1).
//
// A multi-restart, deflated Arnoldi process on the shift-and-inverted
// Hamiltonian around theta = j*omega_center.  Returns every eigenvalue
// inside a *certified clean disk* C(theta, rho): the eigenvalues listed
// are all of M's eigenvalues within distance rho of the shift.
//
// Radius rules implemented exactly as described in the paper:
//  - start from rho0;
//  - if more than n_theta eigenvalues converge inside the current disk,
//    the radius shrinks so that only the n_theta closest are enclosed
//    and the rest are discarded from the report (they stay locked for
//    deflation);
//  - if converged eigenvalues fall outside the initial disk (and the
//    count allows), the radius expands to the farthest converging one;
//  - the certificate is additionally capped below the distance estimate
//    1/|mu| of the nearest *unconverged* Ritz value, with a safety
//    margin, so no unseen eigenvalue can hide inside the disk;
//  - at least `min_restarts` runs are required, and the iteration only
//    stops once a fresh (deflated, re-randomized) restart adds nothing
//    new inside the disk — the explicit-restart insurance of [9]
//    against unlucky start vectors.

#include <cstdint>

#include "phes/hamiltonian/shift_invert.hpp"
#include "phes/la/kernels.hpp"
#include "phes/la/types.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/util/rng.hpp"

namespace phes::core {

/// Tuning knobs of S; defaults follow the paper (d = 60, n_theta = 4-6).
struct SingleShiftOptions {
  std::size_t krylov_dim = 60;      ///< d, Krylov subspace cap
  std::size_t eigs_per_shift = 6;   ///< n_theta
  double ritz_tol = 1e-9;           ///< relative residual acceptance
  std::size_t max_restarts = 10;
  std::size_t min_restarts = 2;     ///< confirmation restarts
  double radius_safety = 0.9;       ///< margin vs. unconverged Ritz dist
  double cluster_tol = 1e-7;        ///< relative eigenvalue dedup radius
  /// Compute substrate for the Arnoldi orthogonalization and the
  /// shift-invert applies (see la/kernels.hpp for the contract).
  la::KernelBackend kernel = la::KernelBackend::kTuned;
};

/// Result of one S invocation.
struct SingleShiftResult {
  la::ComplexVector eigenvalues;  ///< all eigenvalues in C(theta, radius)
  double radius = 0.0;            ///< certified clean radius
  std::size_t restarts = 0;
  std::size_t matvecs = 0;
  /// Shift-invert operators built locally (0 when a factory supplies
  /// them — the factory's owner counts its own builds).
  std::size_t factorizations = 0;
};

/// Run S(j*omega_center, rho0) on the realization's Hamiltonian.
/// `rng` supplies the random restart vectors; pass a stream keyed by the
/// shift id for scheduling-independent reproducibility.
[[nodiscard]] SingleShiftResult single_shift_iteration(
    const macromodel::SimoRealization& realization, double omega_center,
    double rho0, const SingleShiftOptions& options, util::Rng& rng);

/// Same iteration, but the shift-invert operator is requested through
/// `factory` (e.g. an engine::ShiftFactorizationCache) instead of built
/// from scratch.  An empty factory falls back to direct construction.
[[nodiscard]] SingleShiftResult single_shift_iteration(
    const macromodel::SimoRealization& realization, double omega_center,
    double rho0, const SingleShiftOptions& options, util::Rng& rng,
    const hamiltonian::ShiftInvertFactory& factory);

}  // namespace phes::core
