#pragma once
// Reusable solver contexts — the session layer over the parallel
// Hamiltonian eigensolver.
//
// The enforcement loop (characterize -> perturb residues ->
// re-characterize, 3-10 rounds on a typical non-passive model) and the
// verify stage both re-run the eigensolver on a model that differs only
// slightly — or not at all — from the one just solved.  A
// SolverSession makes that reuse explicit: it owns a SimoRealization
// snapshot, a thread-safe LRU ShiftFactorizationCache keyed on
// (model revision, shift), and a WarmStart record of the previous
// outcome that seeds the shift scheduler on re-solves:
//
//  - same revision (verify after enforce, confirmation re-solves): the
//    startup shifts are the previous certified disk centers, every
//    factorization comes back as a cache hit, and the |lambda|max band
//    estimate is skipped;
//  - after update_residues (next enforcement round): factorizations are
//    invalidated (the operator reads C at apply time) but the
//    warm-start seeds survive — the startup shifts are the previous
//    crossing frequencies, exactly where the perturbed eigenvalues
//    still cluster, and the band edge is reused.
//
// One session per job; solve() itself is not thread-safe (run solves
// sequentially on a session), but the solver's worker threads share the
// cache safely.

#include <atomic>
#include <cstdint>

#include "phes/core/solver.hpp"
#include "phes/engine/shift_cache.hpp"
#include "phes/la/matrix.hpp"
#include "phes/macromodel/pole_residue.hpp"
#include "phes/macromodel/simo_realization.hpp"

namespace phes::engine {

/// Outcome record of the session's most recent solve, kept across
/// residue updates so the next characterization starts informed.
struct WarmStart {
  bool valid = false;
  std::uint64_t revision = 0;  ///< revision the record was captured at
  double omega_min = 0.0;      ///< band of the recorded solve
  double omega_max = 0.0;      ///< band edge (doubles as |lambda|max est.)
  /// True when omega_max came from a default-band search (the
  /// |lambda|max estimate or a hint derived from it).  An explicit
  /// caller-set omega_max must never become a later default solve's
  /// band hint — it may truncate the search.
  bool default_band = false;
  la::RealVector crossings;    ///< previous Omega
  la::RealVector shift_centers;  ///< previous certified disk centers
  la::RealVector shift_radii;    ///< certified radii, parallel to centers
};

/// Aggregate session counters (surfaced per job by the pipeline).
struct SessionStats {
  CacheStats cache;
  std::uint64_t revision = 0;
  std::size_t solves = 0;          ///< solver invocations on this session
  std::size_t warm_solves = 0;     ///< solves that consumed a warm start
  std::size_t factorizations = 0;  ///< shift-invert operators built
};

struct SessionOptions {
  std::size_t cache_capacity = 64;
  /// Seed re-solves from the previous outcome (band + shifts).
  bool warm_start = true;
  /// Pre-build the seed shifts' factorizations before the scheduler
  /// runs, so seeded startup intervals begin with cache hits.
  bool prefetch_seeds = true;
  /// A re-solve of an UNCHANGED revision counts the recorded solve as
  /// the confirmation restart for each replayed disk: min_restarts
  /// drops to 1 for the seeded intervals only (fresh mop-up intervals
  /// keep the full restart insurance), roughly halving the cost of
  /// empty disks on the verify path.
  bool confirmation_resolve = true;
};

class SolverSession {
 public:
  /// Owns `realization` as its model snapshot (revision 0).
  explicit SolverSession(macromodel::SimoRealization realization,
                         SessionOptions options = {});
  /// Convenience: realize a pole-residue model into the session.
  explicit SolverSession(const macromodel::PoleResidueModel& model,
                         SessionOptions options = {});

  SolverSession(const SolverSession&) = delete;
  SolverSession& operator=(const SolverSession&) = delete;

  [[nodiscard]] const macromodel::SimoRealization& realization()
      const noexcept {
    return realization_;
  }
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

  /// Replace the residue matrix C (what enforcement perturbs).  Bumps
  /// the model revision and invalidates every cached factorization —
  /// but deliberately keeps the warm-start record: the new model's
  /// imaginary eigenvalues still cluster near the old crossings.
  void update_residues(const la::RealMatrix& c);

  /// Run the eigensolver on the current snapshot, warm-started from the
  /// previous outcome and with factorizations routed through the cache.
  [[nodiscard]] core::SolverResult solve(const core::SolverOptions& options);

  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] SessionStats stats() const;
  /// Approximate resident memory: the realization's matrices plus the
  /// cached factorizations (each a 2p x 2p complex LU).  Used by
  /// SessionPool's eviction budget; not an allocator-exact figure.
  [[nodiscard]] std::size_t approx_memory_bytes() const;
  [[nodiscard]] const WarmStart& warm_start() const noexcept { return warm_; }
  void clear_warm_start() { warm_ = WarmStart{}; }

 private:
  macromodel::SimoRealization realization_;
  SessionOptions options_;
  std::uint64_t revision_ = 0;
  ShiftFactorizationCache cache_;
  WarmStart warm_;
  /// Cumulative relative C drift since the band edge was last
  /// estimated; solve() refuses the warm band hint (and re-estimates)
  /// once this is no longer small relative to the estimate's safety
  /// factor, so the search band cannot go stale over many rounds.
  double residue_drift_ = 0.0;
  std::atomic<std::size_t> factorizations_{0};
  std::size_t solves_ = 0;
  std::size_t warm_solves_ = 0;
};

}  // namespace phes::engine
