#pragma once
// Cross-job session sharing — a pool of SolverSessions keyed by model
// content hash.
//
// The workload that motivates a long-lived job server is many
// near-identical jobs over the same macromodel: parameter sweeps of
// enforcement options, repeated characterizations while a designer
// iterates, batches regenerated from the same Touchstone sweep.  Each
// such job realizes the same SimoRealization, so its shift-invert
// factorizations are interchangeable — but a per-job SolverSession
// (PR 2) throws them away when the job ends.  The pool keeps finished
// jobs' sessions alive, keyed by a content hash of the realization, and
// hands them to the next job over the same model: that job's solver
// then starts with a hot ShiftFactorizationCache.
//
// Correctness rules:
//  - Checkout is exclusive (SolverSession::solve is not thread-safe);
//    concurrent jobs over one model get distinct sessions, successive
//    jobs reuse them.  A hash match is confirmed by an exact
//    realization comparison, so a hash collision degrades to a pool
//    miss, never to a wrong model.
//  - Revision guard: enforcement perturbs the session's residues.  A
//    session returned with a bumped revision is restored to the
//    pristine residues captured at creation before it re-enters the
//    pool, so the next job always sees the unperturbed model.
//  - Determinism: by default the warm-start record is cleared on
//    return.  A reused session then schedules the next job's solves
//    exactly like a fresh one — cached factorizations change *cost*,
//    never results, keeping pooled jobs bit-identical to one-shot runs.
//    Sweeps that prefer throughput over bitwise reproducibility can
//    keep warm starts with `reset_warm_start = false`.
//  - Idle sessions are evicted least-recently-used first once the pool
//    exceeds its session-count or approximate-memory budget.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>

#include "phes/engine/session.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/util/sync.hpp"

namespace phes::engine {

/// Content hash of a realization (FNV-1a over the pole blocks and the
/// raw bits of C and D).  Equal models hash equal; the pool never
/// trusts a hash match without an exact comparison.
[[nodiscard]] std::uint64_t model_hash(
    const macromodel::SimoRealization& realization);

/// Exact (bitwise) model equality — the pool's collision guard.
[[nodiscard]] bool same_realization(const macromodel::SimoRealization& a,
                                    const macromodel::SimoRealization& b);

struct SessionPoolOptions {
  /// Budget for *idle* sessions; checked-out sessions are never evicted.
  std::size_t max_idle_sessions = 16;
  std::size_t memory_budget_bytes = 256u << 20;
  /// Options for sessions the pool creates.
  SessionOptions session{};
  /// Restore the pristine residue matrix when a job returns a session
  /// whose revision moved (enforcement ran).  Disable only if every job
  /// wants to continue from the previous job's perturbed model.
  bool reset_residues = true;
  /// Clear the warm-start record on return (see file comment).
  bool reset_warm_start = true;
};

struct SessionPoolStats {
  std::size_t checkouts = 0;
  std::size_t pool_hits = 0;  ///< checkouts served by an idle session
  std::size_t creations = 0;
  std::size_t returns = 0;
  std::size_t restores = 0;   ///< dirty sessions restored to baseline
  std::size_t evictions = 0;  ///< idle sessions dropped by the budgets
  std::size_t collisions = 0; ///< hash matches rejected by comparison
  std::size_t idle_sessions = 0;
  std::size_t leased_sessions = 0;
  std::size_t idle_bytes = 0; ///< approximate resident idle memory
};

class SessionPool;

/// Exclusive RAII lease of a pooled session; the destructor returns the
/// session to the pool (restoring/evicting per the pool options).  The
/// pool must outlive every lease.
class SessionLease {
 public:
  SessionLease() = default;
  SessionLease(SessionLease&& other) noexcept;
  SessionLease& operator=(SessionLease&& other) noexcept;
  SessionLease(const SessionLease&) = delete;
  SessionLease& operator=(const SessionLease&) = delete;
  ~SessionLease();

  [[nodiscard]] explicit operator bool() const noexcept {
    return entry_ != nullptr;
  }
  /// Valid only while the lease holds an entry.
  [[nodiscard]] SolverSession& session() const;
  /// True when the checkout was served by an idle pooled session (the
  /// factorization cache may already be hot).
  [[nodiscard]] bool reused() const noexcept { return reused_; }

  /// Return the session now (idempotent).
  void release();

 private:
  friend class SessionPool;

  SessionPool* pool_ = nullptr;
  void* entry_ = nullptr;  ///< SessionPool::Entry, opaque here
  bool reused_ = false;
};

class SessionPool {
 public:
  explicit SessionPool(SessionPoolOptions options = {});
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Check out a session for `realization`'s model.  An idle session
  /// with the same content hash (verified by exact comparison) is
  /// reused; otherwise `realization` is moved into a fresh session.
  [[nodiscard]] SessionLease checkout(macromodel::SimoRealization realization)
      PHES_EXCLUDES(mutex_);

  /// Drop every idle session (leased ones are unaffected).
  void clear_idle() PHES_EXCLUDES(mutex_);

  [[nodiscard]] SessionPoolStats stats() const PHES_EXCLUDES(mutex_);
  [[nodiscard]] const SessionPoolOptions& options() const noexcept {
    return options_;
  }

 private:
  friend class SessionLease;

  struct Entry {
    std::uint64_t hash = 0;
    std::unique_ptr<SolverSession> session;
    /// Pristine residues + the revision they correspond to; the
    /// revision guard restores these when a job returns the session
    /// with a different revision.
    la::RealMatrix baseline_c;
    std::uint64_t clean_revision = 0;
    std::size_t bytes = 0;
  };

  void give_back(Entry* entry) PHES_EXCLUDES(mutex_);
  void evict_over_budget_locked() PHES_REQUIRES(mutex_);

  SessionPoolOptions options_;
  mutable util::Mutex mutex_;
  /// Idle entries, most recently used first.
  std::list<std::unique_ptr<Entry>> idle_ PHES_GUARDED_BY(mutex_);
  std::size_t idle_bytes_ PHES_GUARDED_BY(mutex_) = 0;
  std::size_t leased_ PHES_GUARDED_BY(mutex_) = 0;
  std::size_t checkouts_ PHES_GUARDED_BY(mutex_) = 0;
  std::size_t pool_hits_ PHES_GUARDED_BY(mutex_) = 0;
  std::size_t creations_ PHES_GUARDED_BY(mutex_) = 0;
  std::size_t returns_ PHES_GUARDED_BY(mutex_) = 0;
  std::size_t restores_ PHES_GUARDED_BY(mutex_) = 0;
  std::size_t evictions_ PHES_GUARDED_BY(mutex_) = 0;
  std::size_t collisions_ PHES_GUARDED_BY(mutex_) = 0;
};

}  // namespace phes::engine
