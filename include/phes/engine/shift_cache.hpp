#pragma once
// Thread-safe LRU cache of Sherman-Morrison-Woodbury shift-and-invert
// factorizations, keyed on (model revision, shift).
//
// The dominant per-shift cost of the eigensolver is the O(n p^2 + p^3)
// operator setup (two transfer evaluations plus the 2p x 2p kernel LU).
// Re-characterizations of the SAME model revision — the verify stage
// after enforcement, repeated batch jobs, confirmation re-solves — ask
// for the same shifts again; this cache hands the finished operator
// back instead of rebuilding it.  A residue update bumps the owning
// session's revision, so stale operators can never be returned (the
// operator reads the realization's C matrix at apply time); the session
// also purges them eagerly to free capacity.
//
// Concurrency: lookups and inserts are mutex-protected; the build
// itself runs OUTSIDE the lock so solver threads factorizing different
// shifts never serialize.  Two threads racing on one key may both
// build; the first insert wins and both get a usable operator.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>

#include "phes/hamiltonian/shift_invert.hpp"
#include "phes/la/kernels.hpp"
#include "phes/la/types.hpp"
#include "phes/util/sync.hpp"

namespace phes::engine {

/// Counter snapshot; deltas around a solve give per-solve statistics.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;  ///< capacity evictions (LRU order)
  std::size_t entries = 0;    ///< current resident factorizations
};

class ShiftFactorizationCache {
 public:
  using OpPtr = std::shared_ptr<const hamiltonian::SmwShiftInvertOp>;
  using Builder = std::function<OpPtr()>;

  explicit ShiftFactorizationCache(std::size_t capacity = 64);

  /// Return the cached operator for (revision, theta, backend), or
  /// invoke `build` and cache its result.  `build` runs without the
  /// cache lock held; exceptions from it propagate (nothing is cached).
  /// The least-recently-used entry is evicted when the cache is full.
  /// The kernel backend is part of the key: tuned and reference
  /// operators for one shift are distinct entries, so flipping the
  /// backend between solves can never hand back an operator built for
  /// the other substrate.
  [[nodiscard]] OpPtr acquire(
      std::uint64_t revision, la::Complex theta, const Builder& build,
      la::KernelBackend backend = la::KernelBackend::kTuned)
      PHES_EXCLUDES(mutex_);

  /// Drop every entry with revision < `revision` (residue update:
  /// operators against the old C matrix are invalid).
  void invalidate_before(std::uint64_t revision) PHES_EXCLUDES(mutex_);

  /// Drop everything (counters are kept).
  void clear() PHES_EXCLUDES(mutex_);

  [[nodiscard]] bool contains(
      std::uint64_t revision, la::Complex theta,
      la::KernelBackend backend = la::KernelBackend::kTuned) const
      PHES_EXCLUDES(mutex_);

  [[nodiscard]] CacheStats stats() const PHES_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Key {
    std::uint64_t revision = 0;
    double re = 0.0;
    double im = 0.0;
    int backend = 0;  ///< la::KernelBackend as an ordered int
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    OpPtr op;
    std::list<Key>::iterator lru_pos;  ///< position in lru_ (front = MRU)
  };

  mutable util::Mutex mutex_;
  std::size_t capacity_;
  std::list<Key> lru_ PHES_GUARDED_BY(mutex_);  ///< most recent at front
  std::map<Key, Entry> entries_ PHES_GUARDED_BY(mutex_);
  std::size_t hits_ PHES_GUARDED_BY(mutex_) = 0;
  std::size_t misses_ PHES_GUARDED_BY(mutex_) = 0;
  std::size_t evictions_ PHES_GUARDED_BY(mutex_) = 0;
};

}  // namespace phes::engine
