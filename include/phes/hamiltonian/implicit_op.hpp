#pragma once
// Structure-exploiting application of the Hamiltonian matrix M itself
// (no inversion):  y = M x  in O(n p).
//
// Used to estimate |lambda_max(M)|, which bounds the search bandwidth
// (paper Sec. IV-A: "the upper bound is precomputed as the magnitude of
// the largest Hamiltonian eigenvalue, which can be obtained with a
// single-shift iteration on M without applying any shift-and-invert
// operation").

#include <memory>

#include "phes/la/lu.hpp"
#include "phes/hamiltonian/operators.hpp"
#include "phes/macromodel/simo_realization.hpp"

namespace phes::hamiltonian {

class ImplicitHamiltonianOp final : public ComplexLinearOperator {
 public:
  /// Keeps a reference to `realization`; the caller guarantees it
  /// outlives the operator.
  explicit ImplicitHamiltonianOp(
      const macromodel::SimoRealization& realization);

  [[nodiscard]] std::size_t dim() const noexcept override {
    return 2 * realization_.order();
  }

  void apply(std::span<const Complex> x,
             std::span<Complex> y) const override;

 private:
  const macromodel::SimoRealization& realization_;
  la::LuFactorization<double> r_lu_;  ///< R = D^T D - I
  la::LuFactorization<double> s_lu_;  ///< S = D D^T - I
  la::RealMatrix d_;
};

}  // namespace phes::hamiltonian
