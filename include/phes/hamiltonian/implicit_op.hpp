#pragma once
// Structure-exploiting application of the Hamiltonian matrix M itself
// (no inversion):  y = M x  in O(n p).
//
// Used to estimate |lambda_max(M)|, which bounds the search bandwidth
// (paper Sec. IV-A: "the upper bound is precomputed as the magnitude of
// the largest Hamiltonian eigenvalue, which can be obtained with a
// single-shift iteration on M without applying any shift-and-invert
// operation").

#include <memory>

#include "phes/la/kernels.hpp"
#include "phes/la/lu.hpp"
#include "phes/hamiltonian/operators.hpp"
#include "phes/macromodel/simo_realization.hpp"

namespace phes::hamiltonian {

class ImplicitHamiltonianOp final : public ComplexLinearOperator {
 public:
  /// Keeps a reference to `realization`; the caller guarantees it
  /// outlives the operator.  `backend` selects the compute substrate:
  /// kReference reproduces the original apply loops bit for bit;
  /// kTuned batches the R^{-1}/S^{-1} small solves through one fused
  /// multi-RHS LU apply, runs the dense C products on split real/imag
  /// planes, and fuses the A / A^T block traversals of the two
  /// Hamiltonian halves (J-symmetry: y1 and y2 walk the same blocks).
  explicit ImplicitHamiltonianOp(
      const macromodel::SimoRealization& realization,
      la::KernelBackend backend = la::KernelBackend::kTuned);

  [[nodiscard]] std::size_t dim() const noexcept override {
    return 2 * realization_.order();
  }

  [[nodiscard]] la::KernelBackend backend() const noexcept {
    return backend_;
  }

  void apply(std::span<const Complex> x,
             std::span<Complex> y) const override;

 private:
  void apply_reference(std::span<const Complex> x,
                       std::span<Complex> y) const;
  void apply_tuned(std::span<const Complex> x, std::span<Complex> y) const;

  const macromodel::SimoRealization& realization_;
  la::LuFactorization<double> r_lu_;  ///< R = D^T D - I
  la::LuFactorization<double> s_lu_;  ///< S = D D^T - I
  la::RealMatrix d_;
  la::KernelBackend backend_;
};

}  // namespace phes::hamiltonian
