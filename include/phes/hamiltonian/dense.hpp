#pragma once
// Dense Hamiltonian matrix construction (paper Eq. 5).
//
// For a scattering macromodel H(s) = D + C (sI-A)^{-1} B with
// sigma_max(D) < 1, the 2n x 2n Hamiltonian
//
//   M = [ A - B R^{-1} D^T C        -B R^{-1} B^T
//         C^T S^{-1} C              -A^T + C^T D R^{-1} B^T ],
//   R = D^T D - I,   S = D D^T - I
//
// has a purely imaginary eigenvalue j*w exactly where some singular
// value of H(jw) touches 1.  The dense form is O(n^2) storage and is
// used for baselines and cross-validation; the solver itself only ever
// applies M implicitly.

#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"
#include "phes/macromodel/statespace.hpp"

namespace phes::hamiltonian {

using la::Complex;
using la::ComplexVector;
using la::RealMatrix;

/// Assemble the scattering Hamiltonian.  Throws std::invalid_argument
/// if sigma_max(D) >= 1 (R/S would be singular; the paper assumes
/// strict asymptotic passivity, Eq. 4).
[[nodiscard]] RealMatrix build_scattering_hamiltonian(
    const macromodel::StateSpaceModel& model);

/// Assemble the immittance (admittance/impedance) Hamiltonian
///   M = [ A - B Q^{-1} C   -B Q^{-1} B^T
///         C^T Q^{-1} C     -A^T + C^T Q^{-1} B^T ],  Q = D + D^T,
/// whose imaginary eigenvalues mark eigenvalue-of-Re{H} zero crossings.
/// Throws if Q is singular.  (Paper Sec. II: "the same derivations can
/// be performed for the impedance, admittance, and hybrid cases".)
[[nodiscard]] RealMatrix build_immittance_hamiltonian(
    const macromodel::StateSpaceModel& model);

}  // namespace phes::hamiltonian
