#pragma once
// Implicit linear operators on C^{2n} — the only interface the Krylov
// eigensolver needs.  Implementations exploit the SIMO structure so no
// 2n x 2n matrix is ever formed.

#include <cstddef>
#include <span>

#include "phes/la/types.hpp"

namespace phes::hamiltonian {

using la::Complex;

/// y = Op(x) for complex vectors.  Implementations must be safe to call
/// concurrently from multiple threads (const apply, no shared mutable
/// state) — the parallel scheduler runs one operator per shift but
/// shares the underlying realization.
class ComplexLinearOperator {
 public:
  virtual ~ComplexLinearOperator() = default;

  [[nodiscard]] virtual std::size_t dim() const noexcept = 0;

  virtual void apply(std::span<const Complex> x,
                     std::span<Complex> y) const = 0;
};

}  // namespace phes::hamiltonian
