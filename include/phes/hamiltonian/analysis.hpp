#pragma once
// Spectrum post-processing helpers for Hamiltonian eigensolutions.

#include <vector>

#include "phes/la/types.hpp"

namespace phes::hamiltonian {

using la::Complex;
using la::ComplexVector;
using la::RealVector;

/// Extracts the sorted positive frequencies w of (numerically) purely
/// imaginary eigenvalues lambda = j*w from a spectrum.  An eigenvalue
/// counts as imaginary when |Re| <= tol_rel * max(|lambda|, scale).
/// The +-j*w pair contributes a single entry; near-duplicates within
/// tol_rel * scale collapse to one.
[[nodiscard]] RealVector extract_imaginary_frequencies(
    const ComplexVector& spectrum, double tol_rel, double scale);

/// True when for every lambda in the spectrum, -conj(lambda) is also
/// present (to tolerance) — the Hamiltonian quadruple symmetry.
[[nodiscard]] bool has_hamiltonian_symmetry(const ComplexVector& spectrum,
                                            double tol);

}  // namespace phes::hamiltonian
