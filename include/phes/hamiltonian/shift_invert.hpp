#pragma once
// Sherman-Morrison-Woodbury shift-and-invert operator (paper Eq. 6).
//
// Split the Hamiltonian as M = M0 + U W V with
//   M0 = blkdiag(A, -A^T),  U = [B 0; 0 C^T],  V = [C 0; 0 B^T],
//   W  = [-R^{-1} D^T  -R^{-1};  S^{-1}  D R^{-1}].
// Using the identities S D = D R and D^T S = R D^T one obtains the
// closed form W^{-1} = [-S D R^{-1}  -I;  I  D^T] and, with
// G = (M0 - theta I)^{-1},
//
//   (M - theta I)^{-1} x = G x - G U K^{-1} V G x,
//   K = W^{-1} + V G U = [ -H(theta)   -I
//                            I         H(-theta)^T ],
//
// where H(s) = D + C (sI - A)^{-1} B is the macromodel transfer matrix
// itself.  (The scanned paper's Eq. 6 has OCR-mangled signs; this
// derivation is verified against a dense complex LU solve in
// tests/test_hamiltonian.cpp.)
//
// Costs: per shift O(n p^2 + p^3) setup (two transfer evaluations and a
// 2p x 2p LU); per apply O(n p) — the term that is "linear in the
// number of macromodel states n" (paper Sec. III).

#include <functional>
#include <memory>

#include "phes/la/lu.hpp"
#include "phes/hamiltonian/operators.hpp"
#include "phes/macromodel/simo_realization.hpp"

namespace phes::hamiltonian {

class SmwShiftInvertOp;

/// Pluggable construction of shift-and-invert operators.  The Krylov
/// layers request (M - theta I)^{-1} through this hook, so a caller can
/// route construction through a factorization cache
/// (engine::ShiftFactorizationCache) instead of building from scratch.
/// Like the direct constructor, a factory throws std::runtime_error
/// when theta is (numerically) an eigenvalue of M; callers nudge the
/// shift and retry.  An empty function means "build fresh per shift".
using ShiftInvertFactory =
    std::function<std::shared_ptr<const SmwShiftInvertOp>(Complex theta)>;

class SmwShiftInvertOp final : public ComplexLinearOperator {
 public:
  /// Prepares the per-shift factorizations for y = (M - theta I)^{-1} x.
  /// Keeps a reference to `realization` (caller guarantees lifetime).
  /// Throws std::runtime_error if theta is (numerically) an eigenvalue
  /// of M, making K singular; callers nudge the shift and retry.
  SmwShiftInvertOp(const macromodel::SimoRealization& realization,
                   Complex theta);

  [[nodiscard]] std::size_t dim() const noexcept override {
    return 2 * realization_.order();
  }

  [[nodiscard]] Complex shift() const noexcept { return theta_; }

  void apply(std::span<const Complex> x,
             std::span<Complex> y) const override;

 private:
  const macromodel::SimoRealization& realization_;
  Complex theta_;
  std::unique_ptr<la::LuFactorization<Complex>> k_lu_;  ///< 2p x 2p kernel
};

}  // namespace phes::hamiltonian
