#pragma once
// Sherman-Morrison-Woodbury shift-and-invert operator (paper Eq. 6).
//
// Split the Hamiltonian as M = M0 + U W V with
//   M0 = blkdiag(A, -A^T),  U = [B 0; 0 C^T],  V = [C 0; 0 B^T],
//   W  = [-R^{-1} D^T  -R^{-1};  S^{-1}  D R^{-1}].
// Using the identities S D = D R and D^T S = R D^T one obtains the
// closed form W^{-1} = [-S D R^{-1}  -I;  I  D^T] and, with
// G = (M0 - theta I)^{-1},
//
//   (M - theta I)^{-1} x = G x - G U K^{-1} V G x,
//   K = W^{-1} + V G U = [ -H(theta)   -I
//                            I         H(-theta)^T ],
//
// where H(s) = D + C (sI - A)^{-1} B is the macromodel transfer matrix
// itself.  (The scanned paper's Eq. 6 has OCR-mangled signs; this
// derivation is verified against a dense complex LU solve in
// tests/test_hamiltonian.cpp.)
//
// Costs: per shift O(n p^2 + p^3) setup (two transfer evaluations and a
// 2p x 2p LU); per apply O(n p) — the term that is "linear in the
// number of macromodel states n" (paper Sec. III).

#include <functional>
#include <memory>
#include <vector>

#include "phes/la/kernels.hpp"
#include "phes/la/lu.hpp"
#include "phes/hamiltonian/operators.hpp"
#include "phes/macromodel/simo_realization.hpp"

namespace phes::hamiltonian {

class SmwShiftInvertOp;

/// Pluggable construction of shift-and-invert operators.  The Krylov
/// layers request (M - theta I)^{-1} through this hook, so a caller can
/// route construction through a factorization cache
/// (engine::ShiftFactorizationCache) instead of building from scratch.
/// Like the direct constructor, a factory throws std::runtime_error
/// when theta is (numerically) an eigenvalue of M; callers nudge the
/// shift and retry.  An empty function means "build fresh per shift".
using ShiftInvertFactory =
    std::function<std::shared_ptr<const SmwShiftInvertOp>(Complex theta)>;

class SmwShiftInvertOp final : public ComplexLinearOperator {
 public:
  /// Prepares the per-shift factorizations for y = (M - theta I)^{-1} x.
  /// Keeps a reference to `realization` (caller guarantees lifetime).
  /// Throws std::runtime_error if theta is (numerically) an eigenvalue
  /// of M, making K singular; callers nudge the shift and retry.
  ///
  /// `backend` selects the per-apply compute substrate: kReference
  /// reproduces the original apply loops bit for bit; kTuned replaces
  /// the per-apply pole-block divisions with resolvent multiplier
  /// tables frozen at theta (every (A - theta I)^{-1} /
  /// -(A^T + theta I)^{-1} block collapses to a precomputed uniform
  /// 2x2 rotation), and runs the dense C / C^T products on split
  /// real/imag planes.
  SmwShiftInvertOp(const macromodel::SimoRealization& realization,
                   Complex theta,
                   la::KernelBackend backend = la::KernelBackend::kTuned);

  [[nodiscard]] std::size_t dim() const noexcept override {
    return 2 * realization_.order();
  }

  [[nodiscard]] Complex shift() const noexcept { return theta_; }

  [[nodiscard]] la::KernelBackend backend() const noexcept {
    return backend_;
  }

  void apply(std::span<const Complex> x,
             std::span<Complex> y) const override;

 private:
  /// Frozen resolvent multipliers for one pole block at shift theta.
  /// Pairs apply as  y1 = c11 x1 + c12 x2,  y2 = -c12 x1 + c11 x2;
  /// singles as  y = c11 x.  Both resolvent directions (and the
  /// negation of the lower half) fold into this one form.
  struct TableBlock {
    std::size_t state = 0;
    bool is_pair = false;
    Complex c11{};
    Complex c12{};
  };

  void apply_reference(std::span<const Complex> x,
                       std::span<Complex> y) const;
  void apply_tuned(std::span<const Complex> x, std::span<Complex> y) const;

  const macromodel::SimoRealization& realization_;
  Complex theta_;
  la::KernelBackend backend_;
  std::unique_ptr<la::LuFactorization<Complex>> k_lu_;  ///< 2p x 2p kernel
  std::vector<TableBlock> p_table_;  ///< (A - theta I)^{-1}      (tuned)
  std::vector<TableBlock> q_table_;  ///< -(A^T + theta I)^{-1}   (tuned)
};

}  // namespace phes::hamiltonian
