#pragma once
// Passivity characterization: from the Hamiltonian crossing set Omega to
// a full qualification of the model (paper Sec. II).
//
// The crossings partition the frequency axis into segments where the
// singular values of H(jw) stay on one side of 1; sampling sigma_max at
// one interior point per segment classifies each as compliant or
// violating, and the violating ones are searched for their worst peak
// (the input the enforcement step needs).

#include <vector>

#include "phes/core/solver.hpp"
#include "phes/la/types.hpp"
#include "phes/macromodel/simo_realization.hpp"

namespace phes::engine {
class SolverSession;
}  // namespace phes::engine

namespace phes::passivity {

/// One frequency band where sigma_max(H(jw)) > 1.
struct ViolationBand {
  double omega_lo = 0.0;   ///< lower crossing (0 if the band starts at DC)
  double omega_hi = 0.0;   ///< upper crossing
  double omega_peak = 0.0; ///< location of the worst violation
  double sigma_peak = 0.0; ///< sigma_max at omega_peak (> 1)
};

/// Full passivity verdict.
struct PassivityReport {
  bool passive = false;
  la::RealVector crossings;          ///< Omega (positive frequencies)
  std::vector<ViolationBand> bands;  ///< empty iff passive
  core::SolverResult solver;         ///< the eigensolver diagnostics
};

/// Classify the bands delimited by `crossings` by sampling sigma_max,
/// then locate each violating band's peak with `samples_per_band`
/// points plus golden-section refinement.
[[nodiscard]] std::vector<ViolationBand> classify_bands(
    const macromodel::SimoRealization& realization,
    const la::RealVector& crossings, std::size_t samples_per_band = 24);

/// Session-based characterization: run the eigensolver through
/// `session` (shift-factorization cache + warm-started scheduling),
/// then classify the bands.  This is the primary entry point — the
/// enforcement loop and the pipeline thread one session through every
/// characterize/enforce/verify stage of a job.
[[nodiscard]] PassivityReport characterize_passivity(
    engine::SolverSession& session,
    const core::SolverOptions& solver_options);

/// One-call compatibility overload: characterizes through a throwaway
/// session (cold solve; results are identical to the pre-session API).
[[nodiscard]] PassivityReport characterize_passivity(
    const macromodel::SimoRealization& realization,
    const core::SolverOptions& solver_options);

}  // namespace phes::passivity
