#pragma once
// Sampling-based passivity checking (in the spirit of the adaptive
// scheme of [17]).  Independent of the Hamiltonian machinery: used to
// cross-validate the algebraic characterization in tests and examples,
// and as a cheap screening tool.  Unlike the Hamiltonian test it can
// miss violations between samples — which is exactly why the paper
// advocates the algebraic route.

#include "phes/la/types.hpp"
#include "phes/macromodel/simo_realization.hpp"

namespace phes::passivity {

struct SweepOptions {
  double omega_min = 0.0;
  double omega_max = 0.0;       ///< must be > omega_min
  std::size_t initial_grid = 128;
  std::size_t refine_levels = 6;  ///< bisection depth around crossings
  double threshold = 1.0;         ///< unit singular-value bound
};

struct SweepResult {
  bool passive = false;
  double worst_sigma = 0.0;
  double worst_omega = 0.0;
  /// Estimated unit-crossing frequencies (bisection-refined).
  la::RealVector estimated_crossings;
};

/// Scan sigma_max(H(jw)) on a grid, bisect each sign change of
/// (sigma_max - threshold) to locate the crossings.
[[nodiscard]] SweepResult sampling_passivity_check(
    const macromodel::SimoRealization& realization,
    const SweepOptions& options);

}  // namespace phes::passivity
