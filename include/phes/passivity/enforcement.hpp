#pragma once
// Passivity enforcement by iterative first-order singular-value
// perturbation of the residue matrix C (the standard scheme of
// [8], [9], [17], which the paper's title refers to and whose inner
// loop is exactly what the fast parallel characterization accelerates).
//
// Each iteration:
//  1. characterize: run the Hamiltonian eigensolver -> crossings ->
//     violation bands with their peaks;
//  2. linearize: at each constraint frequency w*, for each singular
//     value sigma_i > 1 with triplet (u_i, sigma_i, v_i),
//       delta sigma_i = Re( u_i^H  DeltaC  Phi(j w*) v_i ),
//     Phi(s) = (sI - A)^{-1} B, which is linear in DeltaC;
//  3. correct: the minimum-Frobenius-norm DeltaC driving each violating
//     sigma_i to 1 - margin solves a small dual Gram system;
//  4. apply DeltaC to the realization (poles untouched: stability is
//     preserved by construction) and repeat until the Hamiltonian test
//     reports no imaginary eigenvalues.

#include <cstddef>
#include <vector>

#include "phes/core/solver.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/passivity/characterization.hpp"

namespace phes::passivity {

struct EnforcementOptions {
  std::size_t max_iterations = 25;
  /// Enforced ceiling is 1 - margin; a small buffer keeps the next
  /// characterization from finding grazing crossings again.
  double margin = 2e-3;
  /// Extra constraint samples per violation band (besides the peak).
  /// The peak alone usually suffices (the min-norm step flattens the
  /// whole hump); interior samples help on very wide bands but make the
  /// dual system ill-conditioned, so they are off by default.
  std::size_t extra_samples_per_band = 0;
  /// Tikhonov ridge on the dual Gram system (conditioning guard).
  double ridge = 1e-10;
  core::SolverOptions solver{};
};

struct EnforcementIterate {
  std::size_t violation_bands = 0;
  double worst_sigma = 0.0;
  double delta_c_norm = 0.0;  ///< Frobenius norm of this step's DeltaC
  /// This round's characterization cost (warm-started rounds do fewer
  /// matvecs and hit the factorization cache).
  std::size_t solver_matvecs = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  bool warm_started = false;
};

struct EnforcementResult {
  bool success = false;
  std::size_t iterations = 0;
  std::vector<EnforcementIterate> history;
  /// ||C_final - C_initial||_F / ||C_initial||_F — model perturbation.
  double relative_model_change = 0.0;
  // Aggregate characterization cost across all rounds.
  std::size_t characterizations = 0;
  std::size_t total_matvecs = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

/// Session-based enforcement: perturb the residues of the model owned
/// by `session` until passive (or the iteration budget runs out).  Each
/// round re-characterizes through the session, so rounds 2..k are
/// warm-started from the previous crossing set and the final
/// confirmation re-uses the cached factorizations.  Requires
/// sigma_max(D) < 1.  The perturbed model stays in the session
/// (session.realization()).
[[nodiscard]] EnforcementResult enforce_passivity(
    engine::SolverSession& session, const EnforcementOptions& options);

/// Compatibility overload: runs through a throwaway session and writes
/// the perturbed residues back into `realization`.
[[nodiscard]] EnforcementResult enforce_passivity(
    macromodel::SimoRealization& realization,
    const EnforcementOptions& options);

}  // namespace phes::passivity
