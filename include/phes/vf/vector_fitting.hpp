#pragma once
// Vector Fitting (Gustavsen-Semlyen [1]) — the rational-approximation
// substrate that produces the macromodels the eigensolver characterizes
// (paper Sec. II: models are "identified from tabulated frequency
// responses ... using rational curve fitting").
//
// Implemented column-wise (multi-SIMO): each column of the p x p sampled
// transfer matrix is fitted with its own pole set shared by the p
// entries of that column, exactly matching the structured realization
// of paper Eq. 2.  Classic algorithm:
//   1. sigma iteration: solve the linear LS
//        sum_b r_b phi_b(s) + d  -  H(s) sum_b r~_b phi_b(s)  =  H(s)
//      with partial-fraction basis phi_b over the current poles;
//   2. pole relocation: new poles = eig(A_p - b c~^T) (zeros of sigma);
//   3. stability enforcement: flip any Re >= 0 pole into the left
//      half-plane;
//   4. iterate, then fix the poles and solve the final residue problem.

#include <cstddef>
#include <vector>

#include "phes/macromodel/pole_residue.hpp"
#include "phes/macromodel/samples.hpp"

namespace phes::vf {

struct VectorFittingOptions {
  std::size_t num_poles = 16;   ///< states per column (pairs count twice)
  std::size_t iterations = 12;  ///< pole-relocation sweeps
  bool enforce_stability = true;
  /// Initial poles: -damping*beta +- j*beta, beta log-spaced over the
  /// sample band.
  double initial_pole_damping = 0.01;
  /// Stop early when the largest relative pole movement drops below
  /// this threshold.
  double pole_tol = 1e-8;
  /// Worker threads for the independent per-column fits (columns carry
  /// disjoint pole sets and residues, so they parallelize exactly).
  /// 0 or 1 => serial; the pipeline substitutes its per-job solver
  /// thread budget for 0, composing with pipeline::plan_parallelism.
  std::size_t threads = 0;
};

struct VectorFittingResult {
  macromodel::PoleResidueModel model;
  double rms_error = 0.0;          ///< overall relative RMS fit error
  std::vector<double> column_rms;  ///< per-column relative RMS
  std::size_t iterations_used = 0;
};

/// Fit a rational macromodel to tabulated frequency samples.
/// Throws std::invalid_argument on inconsistent samples or options.
[[nodiscard]] VectorFittingResult vector_fit(
    const macromodel::FrequencySamples& samples,
    const VectorFittingOptions& options);

}  // namespace phes::vf
